"""Content-addressed result cache for the synthesis service.

Requests are keyed by the SHA-256 of their *canonical form*, not their
raw bytes: circuits are parsed and re-serialised to canonical BLIF,
expressions to their canonical AST repr, designs and fault maps to
their sorted JSON form, and every omitted knob is resolved to its
default before hashing.  Two requests that mean the same thing — same
function, same gamma/method, same variable-order policy, same fault
map — therefore share one cache entry regardless of formatting,
comments, or parameter spelling.

Storage is two-level: an in-memory LRU front (bounded, entries stored
as JSON strings so every ``get`` hands back a fresh object) over an
optional JSON-file-per-entry disk store that survives restarts.
Evicting from memory never deletes the disk copy.  Hit/miss/eviction
events are mirrored into :mod:`repro.perf.counters` under the
``service_cache_*`` names.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from collections import OrderedDict
from pathlib import Path

from ..perf import counters
from .protocol import (
    CACHEABLE_METHODS,
    MAP_BATCH_DEFAULTS,
    MAP_DEFAULTS,
    SYNTH_DEFAULTS,
)

__all__ = ["CACHE_KEY_SCHEMA", "ResultCache", "canonical_request", "request_key"]

#: Stamped into the hashed material; bump to invalidate every old key.
#: v2: synth keys carry the ``layers`` knob (3D synthesis).
#: v3: synth keys carry the ``plane_method`` knob (certified 3D solves).
CACHE_KEY_SCHEMA = "repro-service-key/3"

_READERS = None  # lazily populated: {"verilog": read_verilog, ...}


def _readers():
    global _READERS
    if _READERS is None:
        from ..io import read_blif, read_pla, read_verilog

        _READERS = {"verilog": read_verilog, "blif": read_blif, "pla": read_pla}
    return _READERS


def _canonical_circuit(params: dict) -> dict:
    """Canonicalise the function under synthesis.

    Raises :class:`ValueError` when the circuit/expression does not
    parse — callers treat that as "no key" and let the worker produce
    the structured parse error.
    """
    if params.get("expr") is not None:
        from ..expr import parse

        return {"expr": repr(parse(params["expr"]))}
    circuit = params.get("circuit")
    if not isinstance(circuit, dict):
        raise ValueError("request has neither 'expr' nor a 'circuit' object")
    reader = _readers().get(circuit.get("format"))
    if reader is None:
        raise ValueError(f"unknown circuit format {circuit.get('format')!r}")
    from ..io import write_blif

    netlist = reader(circuit.get("text", ""), source=circuit.get("source", "<request>"))
    return {"circuit_blif": write_blif(netlist)}


def _canonical_design(params: dict) -> str:
    from ..crossbar import design_from_json, design_to_json

    design_json = params.get("design_json")
    if not isinstance(design_json, str):
        raise ValueError("request missing 'design_json'")
    return design_to_json(design_from_json(design_json))


def _canonical_fault_map(params: dict) -> str:
    from ..crossbar import fault_map_from_json, fault_map_to_json

    payload = params.get("fault_map")
    if isinstance(payload, dict):
        payload = json.dumps(payload)
    if not isinstance(payload, str):
        raise ValueError("request missing 'fault_map'")
    return fault_map_to_json(fault_map_from_json(payload))


def _canonical_fault_maps(params: dict) -> list[str]:
    """Canonicalise a batch request's ``fault_maps`` list, in order.

    Order is preserved (the response's per-item results are positional),
    so two batches over the same maps in a different order hash to
    different keys — the campaign runner dedups map *content* itself via
    fault-class signatures before batching.
    """
    from ..crossbar import fault_map_from_json, fault_map_to_json

    payloads = params.get("fault_maps")
    if not isinstance(payloads, list) or not payloads:
        raise ValueError("batch request missing a non-empty 'fault_maps' list")
    canonical = []
    for payload in payloads:
        if isinstance(payload, dict):
            payload = json.dumps(payload)
        canonical.append(fault_map_to_json(fault_map_from_json(payload)))
    return canonical


def canonical_request(method: str, params: dict) -> dict:
    """The canonical key material for one request.

    Raises :class:`ValueError` for non-cacheable methods or payloads
    that fail to canonicalise (unparseable circuit, bad design JSON).
    """
    if method not in CACHEABLE_METHODS:
        raise ValueError(f"method {method!r} is not cacheable")
    material: dict = {"schema": CACHE_KEY_SCHEMA, "request": method}
    if method == "synth":
        material.update(_canonical_circuit(params))
        for knob, default in SYNTH_DEFAULTS.items():
            value = params.get(knob, default)
            if knob == "order" and value is not None:
                value = list(value)
            material[knob] = value
    elif method == "map":
        material["design"] = _canonical_design(params)
        material.update(_canonical_circuit(params))
        material["fault_map"] = _canonical_fault_map(params)
        for knob, default in MAP_DEFAULTS.items():
            material[knob] = params.get(knob, default)
    elif method == "map_batch":
        material["design"] = _canonical_design(params)
        material.update(_canonical_circuit(params))
        material["fault_maps"] = _canonical_fault_maps(params)
        for knob, default in MAP_BATCH_DEFAULTS.items():
            material[knob] = params.get(knob, default)
    elif method == "validate_batch":
        material["design"] = _canonical_design(params)
        material.update(_canonical_circuit(params))
        material["fault_maps"] = _canonical_fault_maps(params)
    else:  # validate
        material["design"] = _canonical_design(params)
        material.update(_canonical_circuit(params))
    return material


def request_key(method: str, params: dict) -> str:
    """SHA-256 hex digest of the canonical form of one request."""
    material = canonical_request(method, params)
    blob = json.dumps(material, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


class ResultCache:
    """Bounded LRU front over an optional on-disk JSON store.

    Thread safe; all counter mirroring happens under the cache lock so
    the ``service_cache_*`` perf counters stay exact even with many
    server threads.
    """

    def __init__(self, capacity: int = 256, directory: str | Path | None = None):
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self._capacity = capacity
        self._dir = Path(directory) if directory else None
        if self._dir is not None:
            self._dir.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._mem: OrderedDict[str, str] = OrderedDict()
        self._stats = {"hits": 0, "misses": 0, "stores": 0, "evictions": 0}

    # -- internals ---------------------------------------------------------------
    def _path(self, key: str) -> Path:
        return self._dir / f"{key}.json"

    def _disk_get(self, key: str) -> str | None:
        if self._dir is None:
            return None
        path = self._path(key)
        try:
            text = path.read_text()
            entry = json.loads(text)
            if entry.get("schema") != CACHE_KEY_SCHEMA or "result" not in entry:
                raise ValueError("wrong schema")
        except OSError:
            return None
        except (ValueError, TypeError):
            # Corrupted entry: drop it so it cannot shadow a fresh result.
            try:
                path.unlink()
            except OSError:  # check: allow C003
                pass
            return None
        return json.dumps(entry["result"], sort_keys=True)

    def _disk_put(self, key: str, method: str, encoded: str) -> None:
        if self._dir is None:
            return
        entry = (
            '{"schema": ' + json.dumps(CACHE_KEY_SCHEMA)
            + ', "key": ' + json.dumps(key)
            + ', "method": ' + json.dumps(method)
            + ', "result": ' + encoded + "}"
        )
        tmp = self._path(key).with_suffix(f".tmp.{os.getpid()}")
        try:
            # fsync the temp file before the atomic rename, and the
            # directory after it: without the first a power loss can
            # leave the *renamed* entry torn (rename durable, data not),
            # and without the second the rename itself may be lost.
            # A lost rename is harmless (cache miss); a torn entry would
            # shadow a good result until _disk_get drops it.
            with open(tmp, "w", encoding="utf-8") as handle:
                handle.write(entry)
                handle.flush()
                os.fsync(handle.fileno())
            tmp.replace(self._path(key))
            dir_fd = os.open(self._dir, os.O_RDONLY)
            try:
                os.fsync(dir_fd)
            finally:
                os.close(dir_fd)
        except OSError:
            try:
                tmp.unlink()
            except OSError:  # check: allow C003
                pass

    def _remember(self, key: str, encoded: str) -> None:
        self._mem[key] = encoded
        self._mem.move_to_end(key)
        while len(self._mem) > self._capacity:
            self._mem.popitem(last=False)
            self._stats["evictions"] += 1
            counters.increment("service_cache_evictions")

    # -- public API --------------------------------------------------------------
    def get(self, key: str) -> dict | None:
        """The cached result payload for ``key``, or None on a miss."""
        with self._lock:
            encoded = self._mem.get(key)
            if encoded is not None:
                self._mem.move_to_end(key)
            else:
                encoded = self._disk_get(key)
                if encoded is not None:
                    self._remember(key, encoded)
            if encoded is None:
                self._stats["misses"] += 1
                counters.increment("service_cache_misses")
                return None
            self._stats["hits"] += 1
            counters.increment("service_cache_hits")
            return json.loads(encoded)

    def put(self, key: str, result: dict, method: str = "synth") -> None:
        """Store one result payload (must be JSON-serialisable)."""
        encoded = json.dumps(result, sort_keys=True)
        with self._lock:
            self._remember(key, encoded)
            self._disk_put(key, method, encoded)
            self._stats["stores"] += 1
            counters.increment("service_cache_stores")

    def clear(self) -> None:
        """Drop the memory front (disk entries are kept)."""
        with self._lock:
            self._mem.clear()

    def stats(self) -> dict:
        """Hit/miss/store/eviction counts plus sizes and hit rate."""
        with self._lock:
            out = dict(self._stats)
            out["entries_mem"] = len(self._mem)
            if self._dir is not None:
                out["entries_disk"] = sum(1 for _ in self._dir.glob("*.json"))
            else:
                out["entries_disk"] = 0
            lookups = out["hits"] + out["misses"]
            out["hit_rate"] = out["hits"] / lookups if lookups else 0.0
            return out
