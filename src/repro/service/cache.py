"""Content-addressed result cache for the synthesis service.

Requests are keyed by the SHA-256 of their *canonical form*, not their
raw bytes: circuits are parsed and re-serialised to canonical BLIF,
expressions to their canonical AST repr, designs and fault maps to
their sorted JSON form, and every omitted knob is resolved to its
default before hashing.  Two requests that mean the same thing — same
function, same gamma/method, same variable-order policy, same fault
map — therefore share one cache entry regardless of formatting,
comments, or parameter spelling.

Storage is three-level and *sharded*: the key space is split by key
prefix into independently locked shards, each holding a bounded
in-memory LRU front (entries stored as compact JSON strings so every
``get`` hands back a fresh object) over an optional JSON-file-per-entry
disk store that survives restarts, optionally backed by a pluggable
*remote tier* (:mod:`repro.service.remote`) so several service nodes
can share one result space.  Disk and remote I/O always happen
*outside* the shard locks — a lookup that has to touch disk never
stalls concurrent lookups on other keys (or even on the same shard's
memory front).  Evicting from memory never deletes the disk copy.
Hit/miss/eviction events are mirrored into
:mod:`repro.perf.counters` under the ``service_cache_*`` names.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import zlib
from collections import OrderedDict
from pathlib import Path

from ..perf import counters
from .protocol import (
    CACHEABLE_METHODS,
    MAP_BATCH_DEFAULTS,
    MAP_DEFAULTS,
    SYNTH_DEFAULTS,
)

__all__ = [
    "CACHE_KEY_SCHEMA",
    "ResultCache",
    "canonical_request",
    "read_entry",
    "request_key",
    "write_entry",
]

#: Stamped into the hashed material; bump to invalidate every old key.
#: v2: synth keys carry the ``layers`` knob (3D synthesis).
#: v3: synth keys carry the ``plane_method`` knob (certified 3D solves).
CACHE_KEY_SCHEMA = "repro-service-key/3"

_READERS = None  # lazily populated: {"verilog": read_verilog, ...}


def _readers():
    global _READERS
    if _READERS is None:
        from ..io import read_blif, read_pla, read_verilog

        _READERS = {"verilog": read_verilog, "blif": read_blif, "pla": read_pla}
    return _READERS


def _canonical_circuit(params: dict) -> dict:
    """Canonicalise the function under synthesis.

    Raises :class:`ValueError` when the circuit/expression does not
    parse — callers treat that as "no key" and let the worker produce
    the structured parse error.
    """
    if params.get("expr") is not None:
        from ..expr import parse

        return {"expr": repr(parse(params["expr"]))}
    circuit = params.get("circuit")
    if not isinstance(circuit, dict):
        raise ValueError("request has neither 'expr' nor a 'circuit' object")
    reader = _readers().get(circuit.get("format"))
    if reader is None:
        raise ValueError(f"unknown circuit format {circuit.get('format')!r}")
    from ..io import write_blif

    netlist = reader(circuit.get("text", ""), source=circuit.get("source", "<request>"))
    return {"circuit_blif": write_blif(netlist)}


def _canonical_design(params: dict) -> str:
    from ..crossbar import design_from_json, design_to_json

    design_json = params.get("design_json")
    if not isinstance(design_json, str):
        raise ValueError("request missing 'design_json'")
    return design_to_json(design_from_json(design_json))


def _canonical_fault_map(params: dict) -> str:
    from ..crossbar import fault_map_from_json, fault_map_to_json

    payload = params.get("fault_map")
    if isinstance(payload, dict):
        payload = json.dumps(payload)
    if not isinstance(payload, str):
        raise ValueError("request missing 'fault_map'")
    return fault_map_to_json(fault_map_from_json(payload))


def _canonical_fault_maps(params: dict) -> list[str]:
    """Canonicalise a batch request's ``fault_maps`` list, in order.

    Order is preserved (the response's per-item results are positional),
    so two batches over the same maps in a different order hash to
    different keys — the campaign runner dedups map *content* itself via
    fault-class signatures before batching.
    """
    from ..crossbar import fault_map_from_json, fault_map_to_json

    payloads = params.get("fault_maps")
    if not isinstance(payloads, list) or not payloads:
        raise ValueError("batch request missing a non-empty 'fault_maps' list")
    canonical = []
    for payload in payloads:
        if isinstance(payload, dict):
            payload = json.dumps(payload)
        canonical.append(fault_map_to_json(fault_map_from_json(payload)))
    return canonical


def canonical_request(method: str, params: dict) -> dict:
    """The canonical key material for one request.

    Raises :class:`ValueError` for non-cacheable methods or payloads
    that fail to canonicalise (unparseable circuit, bad design JSON).
    """
    if method not in CACHEABLE_METHODS:
        raise ValueError(f"method {method!r} is not cacheable")
    material: dict = {"schema": CACHE_KEY_SCHEMA, "request": method}
    if method == "synth":
        material.update(_canonical_circuit(params))
        for knob, default in SYNTH_DEFAULTS.items():
            value = params.get(knob, default)
            if knob == "order" and value is not None:
                value = list(value)
            material[knob] = value
    elif method == "map":
        material["design"] = _canonical_design(params)
        material.update(_canonical_circuit(params))
        material["fault_map"] = _canonical_fault_map(params)
        for knob, default in MAP_DEFAULTS.items():
            material[knob] = params.get(knob, default)
    elif method == "map_batch":
        material["design"] = _canonical_design(params)
        material.update(_canonical_circuit(params))
        material["fault_maps"] = _canonical_fault_maps(params)
        for knob, default in MAP_BATCH_DEFAULTS.items():
            material[knob] = params.get(knob, default)
    elif method == "validate_batch":
        material["design"] = _canonical_design(params)
        material.update(_canonical_circuit(params))
        material["fault_maps"] = _canonical_fault_maps(params)
    else:  # validate
        material["design"] = _canonical_design(params)
        material.update(_canonical_circuit(params))
        if params.get("fault_map") is not None:
            material["fault_map"] = _canonical_fault_map(params)
    return material


def request_key(method: str, params: dict) -> str:
    """SHA-256 hex digest of the canonical form of one request."""
    material = canonical_request(method, params)
    blob = json.dumps(material, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


# -- on-disk entry format (shared with the directory remote tier) ------------------


def read_entry(path: Path) -> str | None:
    """Read one JSON cache entry file; returns the compact-encoded result.

    Corrupted or wrong-schema entries are *deleted* (so they cannot
    shadow a fresh result) and reported as ``None``.
    """
    try:
        entry = json.loads(path.read_text())
        if entry.get("schema") != CACHE_KEY_SCHEMA or "result" not in entry:
            raise ValueError("wrong schema")
    except OSError:
        return None
    except (ValueError, TypeError):
        try:
            path.unlink()
        except OSError:  # check: allow C003
            pass
        return None
    return json.dumps(entry["result"], sort_keys=True, separators=(",", ":"))


def write_entry(directory: Path, key: str, method: str, encoded: str) -> bool:
    """Durably write one entry file (fsync + atomic rename); True on success.

    The temp file is fsynced before the atomic rename, and the directory
    after it: without the first a power loss can leave the *renamed*
    entry torn (rename durable, data not), and without the second the
    rename itself may be lost.  A lost rename is harmless (cache miss);
    a torn entry would shadow a good result until :func:`read_entry`
    drops it.
    """
    entry = (
        '{"schema": ' + json.dumps(CACHE_KEY_SCHEMA)
        + ', "key": ' + json.dumps(key)
        + ', "method": ' + json.dumps(method)
        + ', "result": ' + encoded + "}"
    )
    tmp = (directory / f"{key}.json").with_suffix(f".tmp.{os.getpid()}")
    try:
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(entry)
            handle.flush()
            os.fsync(handle.fileno())
        tmp.replace(directory / f"{key}.json")
        dir_fd = os.open(directory, os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)
    except OSError:
        try:
            tmp.unlink()
        except OSError:  # check: allow C003
            pass
        return False
    return True


class _Shard:
    """One independently locked slice of the key space."""

    __slots__ = ("lock", "mem", "capacity", "stats", "disk_keys")

    def __init__(self, capacity: int):
        self.lock = threading.Lock()
        self.mem: OrderedDict[str, str] = OrderedDict()
        self.capacity = capacity
        self.stats = {"hits": 0, "misses": 0, "stores": 0, "evictions": 0}
        self.disk_keys: set[str] = set()


class ResultCache:
    """Sharded, bounded LRU front over an optional on-disk JSON store.

    ``shards`` independently locked shards split the key space by key
    prefix; ``capacity`` is the *total* memory budget, distributed
    across shards (so ``shards=1`` reproduces the classic single-lock
    global-LRU behaviour exactly).  An optional ``remote`` tier
    (:class:`repro.service.remote.RemoteTier`) is consulted after a
    local miss and populated on every store, letting N service nodes
    share one result space.

    Thread safe.  Disk and remote I/O happen outside the shard locks;
    the ``service_cache_*`` perf counters stay exact because the
    counters module has its own lock.
    """

    def __init__(
        self,
        capacity: int = 256,
        directory: str | Path | None = None,
        shards: int = 1,
        remote=None,
    ):
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        if shards < 1:
            raise ValueError("cache shards must be >= 1")
        shards = min(shards, capacity)
        self._dir = Path(directory) if directory else None
        if self._dir is not None:
            self._dir.mkdir(parents=True, exist_ok=True)
        self._remote = remote
        base, extra = divmod(capacity, shards)
        self._shards = [_Shard(base + (1 if i < extra else 0)) for i in range(shards)]
        if self._dir is not None:
            # One census at construction; stats() afterwards never globs.
            for path in self._dir.glob("*.json"):
                self._shard(path.stem).disk_keys.add(path.stem)

    # -- internals ---------------------------------------------------------------
    def _shard(self, key: str) -> _Shard:
        n = len(self._shards)
        if n == 1:
            return self._shards[0]
        try:
            index = int(key[:4], 16)
        except ValueError:
            index = zlib.crc32(key.encode())
        return self._shards[index % n]

    def _path(self, key: str) -> Path:
        return self._dir / f"{key}.json"

    def _disk_get(self, key: str, shard: _Shard) -> str | None:
        if self._dir is None:
            return None
        path = self._path(key)
        encoded = read_entry(path)
        if encoded is None and not path.exists():
            with shard.lock:
                shard.disk_keys.discard(key)
        return encoded

    def _disk_put(self, key: str, method: str, encoded: str, shard: _Shard) -> None:
        if self._dir is None:
            return
        if write_entry(self._dir, key, method, encoded):
            with shard.lock:
                shard.disk_keys.add(key)

    def _remote_get(self, key: str) -> str | None:
        if self._remote is None:
            return None
        try:
            encoded = self._remote.get(key)
        except Exception:  # noqa: BLE001 — a remote tier must never take the node down; check: allow C003
            return None
        if encoded is not None:
            counters.increment("service_cache_remote_hits")
        return encoded

    def _remote_put(self, key: str, method: str, encoded: str) -> None:
        if self._remote is None:
            return
        try:
            self._remote.put(key, method, encoded)
        except Exception:  # noqa: BLE001 — remote stores are best-effort; check: allow C003
            return
        counters.increment("service_cache_remote_stores")

    def _remember_locked(self, shard: _Shard, key: str, encoded: str) -> None:
        shard.mem[key] = encoded
        shard.mem.move_to_end(key)
        while len(shard.mem) > shard.capacity:
            shard.mem.popitem(last=False)
            shard.stats["evictions"] += 1
            counters.increment("service_cache_evictions")

    def _lookup_encoded(self, key: str, count_miss: bool) -> str | None:
        """Memory, then disk, then remote; populates warmer tiers on a hit."""
        shard = self._shard(key)
        with shard.lock:
            encoded = shard.mem.get(key)
            if encoded is not None:
                shard.mem.move_to_end(key)
                shard.stats["hits"] += 1
                counters.increment("service_cache_hits")
                return encoded
        # Cold tiers, deliberately outside the shard lock: a disk (or
        # remote) read on one key must not serialize lookups on others.
        encoded = self._disk_get(key, shard)
        from_remote = False
        if encoded is None:
            encoded = self._remote_get(key)
            from_remote = encoded is not None
        with shard.lock:
            if encoded is None:
                if count_miss:
                    shard.stats["misses"] += 1
                    counters.increment("service_cache_misses")
                return None
            self._remember_locked(shard, key, encoded)
            shard.stats["hits"] += 1
            counters.increment("service_cache_hits")
        if from_remote:
            # Write the remote copy through to local disk so the next
            # cold start (or memory eviction) is served locally.
            self._disk_put(key, "remote", encoded, shard)
        return encoded

    # -- public API --------------------------------------------------------------
    def get(self, key: str) -> dict | None:
        """The cached result payload for ``key``, or None on a miss."""
        encoded = self._lookup_encoded(key, count_miss=True)
        return None if encoded is None else json.loads(encoded)

    def get_encoded(self, key: str, count_miss: bool = True) -> str | None:
        """Like :meth:`get` but returns the compact-encoded JSON string.

        The server's cached fast path splices this string straight into
        the response frame, skipping a decode/encode round trip.  With
        ``count_miss=False`` a miss is not counted (the caller falls
        back to :meth:`repro.service.engine.Engine.submit`, whose own
        lookup counts it once).
        """
        return self._lookup_encoded(key, count_miss=count_miss)

    def put(self, key: str, result: dict, method: str = "synth") -> None:
        """Store one result payload (must be JSON-serialisable)."""
        encoded = json.dumps(result, sort_keys=True, separators=(",", ":"))
        shard = self._shard(key)
        with shard.lock:
            self._remember_locked(shard, key, encoded)
            shard.stats["stores"] += 1
            counters.increment("service_cache_stores")
        # The fsync-heavy disk write and the remote store run outside
        # the lock: concurrent lookups on this shard proceed meanwhile.
        self._disk_put(key, method, encoded, shard)
        self._remote_put(key, method, encoded)

    def clear(self) -> None:
        """Drop the memory front (disk entries are kept)."""
        for shard in self._shards:
            with shard.lock:
                shard.mem.clear()

    def stats(self) -> dict:
        """Hit/miss/store/eviction counts plus sizes and hit rate.

        ``entries_disk`` comes from a census kept incrementally (one
        directory scan at construction, updated on store/drop) — this
        call never globs the cache directory.
        """
        out = {"hits": 0, "misses": 0, "stores": 0, "evictions": 0}
        entries_mem = 0
        entries_disk = 0
        shard_sizes = []
        for shard in self._shards:
            with shard.lock:
                for name in out:
                    out[name] += shard.stats[name]
                shard_sizes.append(len(shard.mem))
                entries_mem += len(shard.mem)
                entries_disk += len(shard.disk_keys)
        out["entries_mem"] = entries_mem
        out["entries_disk"] = entries_disk if self._dir is not None else 0
        out["shards"] = len(self._shards)
        out["shard_sizes"] = shard_sizes
        # ``is not None``: an empty InMemoryRemoteTier is falsy (__len__).
        out["remote_tier"] = (
            type(self._remote).__name__ if self._remote is not None else None
        )
        lookups = out["hits"] + out["misses"]
        out["hit_rate"] = out["hits"] / lookups if lookups else 0.0
        return out
