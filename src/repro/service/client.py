"""Blocking client for the synthesis service.

Speaks the NDJSON protocol over a Unix or TCP socket.  One client is
one connection; requests on a connection are pipelined sequentially.

    from repro.service import ServiceClient

    with ServiceClient(socket_path="/tmp/repro.sock") as client:
        result = client.result("synth", {"expr": "(a & b) | c"})
        print(result["metrics"]["semiperimeter"])

For fleet workloads (the yield-campaign runner) the client can be made
*resilient*: constructed with a :class:`RetryPolicy` it retries failed
calls with jittered exponential backoff, transparently reconnecting
after a dropped connection, and retrying ``overloaded`` /
``worker_crash`` responses — safe because every service method is a
deterministic function of its request.  Without a policy the behaviour
is exactly the classic one-shot client.
"""

from __future__ import annotations

import random
import socket
import time
from dataclasses import dataclass, field

from ..perf import counters
from .protocol import ProtocolError, decode_response, encode, make_request

__all__ = ["RetryPolicy", "ServiceClient", "ServiceClientError", "ServiceUnavailable"]


class ServiceClientError(RuntimeError):
    """The server answered with a structured error object."""

    def __init__(self, code: str, message: str, details: dict | None = None):
        super().__init__(f"{code}: {message}")
        self.code = code
        self.message = message
        self.details = details or {}


class ServiceUnavailable(ConnectionError):
    """The server could not be reached or the connection broke."""


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with jittered exponential backoff.

    ``max_attempts`` counts the first try: ``max_attempts=1`` never
    retries.  Attempt ``k`` (0-based) sleeps ``base_delay_s * 2**k``
    capped at ``max_delay_s``, stretched by a seeded uniform jitter in
    ``[1, 1 + jitter]`` so a fleet of campaign clients does not retry in
    lockstep.  Transport failures always qualify for a retry (after a
    reconnect); structured server errors qualify when their code is in
    ``retry_codes`` — by default the two transient ones, ``overloaded``
    and ``worker_crash``.  ``timeout`` is deliberately absent: a job
    that exceeded its budget once will again, unless the caller shrinks
    the request (the campaign runner's batch sizing does exactly that).
    """

    max_attempts: int = 5
    base_delay_s: float = 0.05
    max_delay_s: float = 2.0
    jitter: float = 0.5
    retry_codes: frozenset[str] = frozenset({"overloaded", "worker_crash"})
    seed: int = 0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay_s < 0 or self.max_delay_s < 0 or self.jitter < 0:
            raise ValueError("delays and jitter must be >= 0")

    def delay_s(self, attempt: int, rng: random.Random) -> float:
        capped = min(self.max_delay_s, self.base_delay_s * (2 ** attempt))
        return capped * (1.0 + self.jitter * rng.random())


@dataclass
class _Transport:
    """One live socket + buffered reader (swapped out on reconnect)."""

    sock: socket.socket
    reader: object = field(repr=False)


class ServiceClient:
    """One connection to a running :class:`~repro.service.server.ServiceServer`."""

    def __init__(
        self,
        socket_path: str | None = None,
        tcp: tuple[str, int] | None = None,
        timeout: float | None = 300.0,
        retry: RetryPolicy | None = None,
    ):
        if (socket_path is None) == (tcp is None):
            raise ValueError("choose exactly one of socket_path or tcp=(host, port)")
        if tcp is not None:
            # Accept bracketed IPv6 literals (``("[::1]", 8080)``) the way
            # the CLI writes them; the socket layer wants the bare address.
            host, port = tcp
            if host.startswith("[") and host.endswith("]"):
                host = host[1:-1]
            tcp = (host, port)
        self._socket_path = socket_path
        self._tcp = tcp
        self._timeout = timeout
        self._retry = retry
        self._rng = random.Random(retry.seed if retry is not None else 0)
        self._peer = (
            socket_path
            if socket_path is not None
            else (f"[{tcp[0]}]:{tcp[1]}" if ":" in tcp[0] else f"{tcp[0]}:{tcp[1]}")
        )
        self._transport: _Transport | None = None
        self._closed = False
        self._next_id = 1
        self._connect()

    # -- connection management ---------------------------------------------------
    def _connect(self) -> None:
        try:
            if self._socket_path is not None:
                sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                sock.settimeout(self._timeout)
                sock.connect(self._socket_path)
            else:
                sock = socket.create_connection(self._tcp, timeout=self._timeout)
        except OSError as exc:
            raise ServiceUnavailable(
                f"cannot connect to {self._peer}: {exc.strerror or exc}"
            ) from exc
        self._transport = _Transport(sock=sock, reader=sock.makefile("rb"))

    def _drop_transport(self) -> None:
        transport, self._transport = self._transport, None
        if transport is None:
            return
        try:
            transport.reader.close()
        except OSError:  # check: allow C003 — already tearing the socket down
            pass
        try:
            transport.sock.close()
        except OSError:  # check: allow C003 — already tearing the socket down
            pass

    def reconnect(self) -> None:
        """Tear the connection down and dial the same peer again."""
        if self._closed:
            raise ServiceUnavailable(f"client for {self._peer} is closed")
        self._drop_transport()
        self._connect()
        counters.increment("service_client_reconnects")

    def kill_connection(self) -> None:
        """Forcibly sever the live socket *without* closing the client.

        A chaos-harness hook: the next call sees the broken transport
        exactly as it would a server-side drop, and the retry path (when
        a policy is configured) reconnects.
        """
        transport = self._transport
        if transport is None:
            return
        try:
            transport.sock.shutdown(socket.SHUT_RDWR)
        except OSError:  # check: allow C003 — severing is the goal
            pass

    # -- transport ---------------------------------------------------------------
    def _call_once(self, method: str, params: dict | None, timeout: float | None) -> dict:
        if self._closed:
            raise ServiceUnavailable(f"client for {self._peer} is closed")
        if self._transport is None:
            self._connect()
        transport = self._transport
        request = make_request(method, params, request_id=self._next_id)
        self._next_id += 1
        override = timeout is not None and timeout != self._timeout
        try:
            if override:
                transport.sock.settimeout(timeout)
            try:
                transport.sock.sendall(encode(request))
                line = transport.reader.readline()
            finally:
                if override:
                    try:
                        transport.sock.settimeout(self._timeout)
                    except OSError:  # check: allow C003 — socket may be dead
                        pass
        except OSError as exc:
            self._drop_transport()
            raise ServiceUnavailable(f"connection to {self._peer} broke: {exc}") from exc
        if not line:
            self._drop_transport()
            raise ServiceUnavailable(f"server at {self._peer} closed the connection")
        try:
            return decode_response(line)
        except ProtocolError as exc:
            raise ServiceUnavailable(f"bad frame from {self._peer}: {exc}") from exc

    def call(
        self,
        method: str,
        params: dict | None = None,
        timeout: float | None = None,
    ) -> dict:
        """Send one request; returns the full response envelope.

        ``timeout`` overrides the connection's transport timeout for
        this call only (campaign batches need longer deadlines than
        ``ping``).  With a :class:`RetryPolicy`, transport failures and
        retryable error responses are retried with backoff, reconnecting
        as needed; the last failure is raised (or returned) unchanged.
        """
        policy = self._retry
        attempts = policy.max_attempts if policy is not None else 1
        for attempt in range(attempts):
            last = attempt == attempts - 1
            try:
                response = self._call_once(method, params, timeout)
            except ServiceUnavailable:
                if last:
                    raise
                counters.increment("service_client_retries")
                time.sleep(policy.delay_s(attempt, self._rng))
                try:
                    self.reconnect()
                except ServiceUnavailable:
                    continue  # dial again on the next attempt
                continue
            if (
                not last
                and not response.get("ok")
                and response["error"]["code"] in policy.retry_codes
            ):
                counters.increment("service_client_retries")
                time.sleep(policy.delay_s(attempt, self._rng))
                continue
            return response
        raise ServiceUnavailable(  # pragma: no cover - loop always returns/raises
            f"retries exhausted talking to {self._peer}"
        )

    def result(
        self,
        method: str,
        params: dict | None = None,
        timeout: float | None = None,
    ) -> dict:
        """Send one request; returns ``result`` or raises :class:`ServiceClientError`."""
        response = self.call(method, params, timeout=timeout)
        if response["ok"]:
            return response["result"]
        error = response["error"]
        raise ServiceClientError(
            error["code"], error["message"], error.get("details")
        )

    # -- convenience -------------------------------------------------------------
    def ping(self) -> bool:
        return bool(self.result("ping").get("pong"))

    def stats(self) -> dict:
        return self.result("stats")

    def close(self) -> None:
        """Release the connection; safe to call any number of times."""
        if self._closed:
            return
        self._closed = True
        self._drop_transport()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
