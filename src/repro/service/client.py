"""Blocking client for the synthesis service.

Speaks the NDJSON protocol over a Unix or TCP socket.  One client is
one connection; requests on a connection are pipelined sequentially.

    from repro.service import ServiceClient

    with ServiceClient(socket_path="/tmp/repro.sock") as client:
        result = client.result("synth", {"expr": "(a & b) | c"})
        print(result["metrics"]["semiperimeter"])
"""

from __future__ import annotations

import socket

from .protocol import ProtocolError, decode_response, encode, make_request

__all__ = ["ServiceClient", "ServiceClientError", "ServiceUnavailable"]


class ServiceClientError(RuntimeError):
    """The server answered with a structured error object."""

    def __init__(self, code: str, message: str, details: dict | None = None):
        super().__init__(f"{code}: {message}")
        self.code = code
        self.message = message
        self.details = details or {}


class ServiceUnavailable(ConnectionError):
    """The server could not be reached or the connection broke."""


class ServiceClient:
    """One connection to a running :class:`~repro.service.server.ServiceServer`."""

    def __init__(
        self,
        socket_path: str | None = None,
        tcp: tuple[str, int] | None = None,
        timeout: float | None = 300.0,
    ):
        if (socket_path is None) == (tcp is None):
            raise ValueError("choose exactly one of socket_path or tcp=(host, port)")
        try:
            if socket_path is not None:
                self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                self._sock.settimeout(timeout)
                self._sock.connect(socket_path)
                self._peer = socket_path
            else:
                host, port = tcp
                self._sock = socket.create_connection((host, port), timeout=timeout)
                self._peer = f"{host}:{port}"
        except OSError as exc:
            raise ServiceUnavailable(
                f"cannot connect to {socket_path or ':'.join(map(str, tcp))}: "
                f"{exc.strerror or exc}"
            ) from exc
        self._file = self._sock.makefile("rb")
        self._next_id = 1

    # -- transport ---------------------------------------------------------------
    def call(self, method: str, params: dict | None = None) -> dict:
        """Send one request; returns the full response envelope."""
        request = make_request(method, params, request_id=self._next_id)
        self._next_id += 1
        try:
            self._sock.sendall(encode(request))
            line = self._file.readline()
        except OSError as exc:
            raise ServiceUnavailable(f"connection to {self._peer} broke: {exc}") from exc
        if not line:
            raise ServiceUnavailable(f"server at {self._peer} closed the connection")
        try:
            return decode_response(line)
        except ProtocolError as exc:
            raise ServiceUnavailable(f"bad frame from {self._peer}: {exc}") from exc

    def result(self, method: str, params: dict | None = None) -> dict:
        """Send one request; returns ``result`` or raises :class:`ServiceClientError`."""
        response = self.call(method, params)
        if response["ok"]:
            return response["result"]
        error = response["error"]
        raise ServiceClientError(
            error["code"], error["message"], error.get("details")
        )

    # -- convenience -------------------------------------------------------------
    def ping(self) -> bool:
        return bool(self.result("ping").get("pong"))

    def stats(self) -> dict:
        return self.result("stats")

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
