"""Job engine: bounded queue, process-pool workers, dedup, timeouts.

The engine sits between the socket server and the synthesis pipeline:

* **Bounded admission** — at most ``queue_size`` jobs may be active
  (queued or running); further submissions are rejected with a
  structured ``overloaded`` error instead of growing without bound.
* **Content-addressed caching** — cacheable requests are keyed by
  :func:`repro.service.cache.request_key`; hits short-circuit the pool.
* **In-flight deduplication** — identical concurrent requests share
  one future: the second caller attaches to the first caller's job and
  both receive the single result (counter ``service_dedup_hits``).
* **Process isolation** — jobs run in a :class:`ProcessPoolExecutor`
  sized by ``jobs``.  Each worker reports ``(job_id, pid)`` on a shared
  start queue the moment it picks a job up, which is what lets the
  engine attribute a died-worker event to exactly the job it was
  running.
* **Per-job timeouts with cancellation** — a monitor thread kills the
  worker pid of any job that exceeds ``job_timeout``; the affected
  client gets a ``timeout`` error and the pool is rebuilt.
* **Crash recovery** — when the pool breaks (worker SIGKILLed, OOMed),
  the job that was running on the dead pid resolves to a
  ``worker_crash`` error, innocent in-flight jobs are resubmitted to a
  fresh pool, and serving continues.
* **Graceful drain** — :meth:`drain` stops admitting work, lets
  in-flight jobs finish (up to a deadline), then shuts the pool down.

All engine-level events are mirrored into :mod:`repro.perf.counters`
under ``service_*`` names.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import queue as queue_mod
import signal
import threading
import time
from collections import OrderedDict
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path

from ..perf import counters
from .cache import ResultCache, request_key
from .protocol import BATCH_METHODS, CACHEABLE_METHODS

__all__ = ["Engine", "Job"]

_MAX_RETRIES = 1  # resubmissions allowed after an unrelated pool break

#: Bound on the (method, raw-params) -> content-address memo.  Each
#: entry is a pair of short strings; 4096 covers any realistic distinct
#: working set while keeping the memo a few hundred KB at worst.
_KEY_MEMO_CAPACITY = 4096

#: How long a size-1 batch chunk keeps waiting for a queue slot before
#: the degraded batch finally reports ``overloaded`` itself.
_BATCH_RETRY_WINDOW_S = 30.0
_BATCH_RETRY_SLEEP_S = 0.05

# -- worker side ------------------------------------------------------------------

_START_QUEUE = None


def _worker_init(start_queue) -> None:
    global _START_QUEUE
    _START_QUEUE = start_queue
    # Workers must not steal the server's shutdown signals.
    signal.signal(signal.SIGINT, signal.SIG_IGN)


def _run_job(job_id: int, method: str, params: dict) -> dict:
    if _START_QUEUE is not None:
        try:
            _START_QUEUE.put((job_id, os.getpid()))
        except Exception:  # noqa: BLE001 — start reporting is best-effort; check: allow C003
            pass
    from . import jobs

    return jobs.execute(method, params)


def _confirmed_dead(pid: int, window_s: float = 0.25) -> bool:
    """Whether ``pid`` is (or shortly becomes) dead.

    The executor reports a broken pool from its own thread, which can
    run a hair *before* a SIGKILLed worker finishes turning into a
    zombie — a single instantaneous liveness probe would then blame the
    pool break on some other worker and wrongly retry the victim's job.
    A killed process transitions within milliseconds, so polling over a
    short window makes the classification reliable, while a genuinely
    innocent (still running) worker stays alive through the whole
    window and keeps its retry.
    """
    deadline = time.monotonic() + window_s
    while True:
        if not _pid_alive(pid):
            return True
        if time.monotonic() >= deadline:
            return False
        time.sleep(0.005)


def _pid_alive(pid: int) -> bool:
    """True when ``pid`` is a live process (zombies count as dead).

    A SIGKILLed pool worker stays a zombie until the executor reaps it,
    and zombies still answer ``os.kill(pid, 0)`` — so on Linux the
    process state is read from ``/proc`` to tell the two apart.
    """
    try:
        stat = Path(f"/proc/{pid}/stat").read_text()
        # Field 3, after the parenthesised (and possibly space-ridden) comm.
        state = stat.rpartition(")")[2].split()[0]
        return state not in ("Z", "X", "x")
    except (OSError, IndexError):  # check: allow C003
        pass
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True


def _error_payload(code: str, message: str) -> dict:
    return {"ok": False, "error": {"code": code, "message": message}}


def _resolved(payload: dict) -> Future:
    future: Future = Future()
    future.set_result(payload)
    return future


# -- engine -----------------------------------------------------------------------


@dataclass
class Job:
    """One admitted request travelling through the engine."""

    job_id: int
    method: str
    params: dict
    key: str | None
    future: Future
    created_at: float
    generation: int = 0
    pid: int | None = None
    started_at: float | None = None
    timed_out: bool = False
    retries: int = 0
    waiters: int = 1
    pool_future: Future | None = field(default=None, repr=False)


class Engine:
    """Bounded, deduplicating, crash-tolerant job executor."""

    def __init__(
        self,
        jobs: int | None = None,
        queue_size: int = 64,
        job_timeout: float | None = None,
        cache: ResultCache | None = None,
    ):
        self.max_workers = max(1, jobs or os.cpu_count() or 1)
        if queue_size < 1:
            raise ValueError("queue_size must be >= 1")
        self.queue_size = queue_size
        self.job_timeout = job_timeout
        self.cache = cache

        self._lock = threading.RLock()
        self._key_memo: OrderedDict[tuple[str, str], str | None] = OrderedDict()
        self._key_memo_lock = threading.Lock()
        self._jobs: dict[int, Job] = {}
        self._inflight: dict[str, Job] = {}
        self._next_id = 1
        self._generation = 0
        self._draining = False
        self._closed = False

        ctx = multiprocessing.get_context()
        self._start_queue = ctx.Queue()
        self._pool = self._new_pool()
        self._stop = threading.Event()
        self._start_thread = threading.Thread(
            target=self._watch_starts, name="engine-starts", daemon=True
        )
        self._start_thread.start()
        self._timeout_thread = None
        if job_timeout is not None:
            self._timeout_thread = threading.Thread(
                target=self._watch_timeouts, name="engine-timeouts", daemon=True
            )
            self._timeout_thread.start()

    # -- pool management ---------------------------------------------------------
    def _new_pool(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=self.max_workers,
            initializer=_worker_init,
            initargs=(self._start_queue,),
        )

    def _submit_locked(self, job: Job) -> None:
        job.generation = self._generation
        job.pid = None
        job.started_at = None
        try:
            pool_future = self._pool.submit(_run_job, job.job_id, job.method, job.params)
        except BrokenProcessPool:
            # The pool broke between jobs (e.g. a worker SIGKILLed while
            # idle): rebuild and retry through the standard recovery
            # path instead of leaking the exception to the caller.
            self._handle_broken_locked(job)
            return
        job.pool_future = pool_future
        pool_future.add_done_callback(lambda f, job_id=job.job_id: self._on_done(job_id, f))

    # -- monitors ----------------------------------------------------------------
    def _watch_starts(self) -> None:
        while not self._stop.is_set():
            try:
                item = self._start_queue.get(timeout=0.1)
            except (queue_mod.Empty, OSError, EOFError):  # check: allow C003
                continue
            if item is None:
                break
            job_id, pid = item
            with self._lock:
                job = self._jobs.get(job_id)
                if job is not None and job.started_at is None:
                    job.pid = pid
                    job.started_at = time.monotonic()

    def _watch_timeouts(self) -> None:
        assert self.job_timeout is not None
        while not self._stop.is_set():
            now = time.monotonic()
            overdue: list[tuple[int, int]] = []
            with self._lock:
                for job in self._jobs.values():
                    if (
                        job.started_at is not None
                        and job.pid is not None
                        and not job.timed_out
                        and now - job.started_at > self.job_timeout
                    ):
                        job.timed_out = True
                        overdue.append((job.job_id, job.pid))
            for _job_id, pid in overdue:
                counters.increment("service_job_timeouts")
                try:
                    os.kill(pid, signal.SIGKILL)
                except OSError:  # check: allow C003
                    pass
            self._stop.wait(min(0.05, self.job_timeout / 4))

    # -- completion --------------------------------------------------------------
    def _resolve_locked(self, job: Job, payload: dict) -> None:
        self._jobs.pop(job.job_id, None)
        if job.key is not None and self._inflight.get(job.key) is job:
            del self._inflight[job.key]
        if payload.get("ok"):
            counters.increment("service_jobs_completed")
            if job.key is not None and self.cache is not None:
                self.cache.put(job.key, payload["result"], method=job.method)
        else:
            counters.increment("service_jobs_failed")
        if not job.future.done():
            job.future.set_result(payload)

    def _on_done(self, job_id: int, pool_future: Future) -> None:
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None or job.pool_future is not pool_future:
                return  # already resolved or resubmitted under a newer future
            exc = pool_future.exception()
            if exc is None:
                self._resolve_locked(job, pool_future.result())
            elif isinstance(exc, BrokenProcessPool):
                self._handle_broken_locked(job)
            else:
                self._resolve_locked(
                    job, _error_payload("internal", f"{type(exc).__name__}: {exc}")
                )

    def _handle_broken_locked(self, job: Job) -> None:
        # First affected job of this pool generation rebuilds the pool;
        # later callbacks land on the already-bumped generation.
        if job.generation == self._generation:
            self._generation += 1
            old, self._pool = self._pool, self._new_pool()
            threading.Thread(
                target=old.shutdown, kwargs={"wait": False}, daemon=True
            ).start()

        if job.timed_out:
            self._resolve_locked(job, _error_payload(
                "timeout",
                f"job exceeded the {self.job_timeout:g}s budget and was cancelled",
            ))
        elif job.pid is not None and _confirmed_dead(job.pid):
            counters.increment("service_worker_crashes")
            self._resolve_locked(job, _error_payload(
                "worker_crash",
                f"worker pid {job.pid} died while executing this job",
            ))
        elif job.retries >= _MAX_RETRIES:
            self._resolve_locked(job, _error_payload(
                "worker_crash",
                "worker pool broke repeatedly while executing this job",
            ))
        elif self._draining:
            self._resolve_locked(job, _error_payload(
                "draining", "server is draining; job was not retried"
            ))
        else:
            job.retries += 1
            counters.increment("service_job_retries")
            self._submit_locked(job)

    # -- key derivation ----------------------------------------------------------
    @staticmethod
    def _params_blob(params: dict) -> str | None:
        try:
            return json.dumps(params, sort_keys=True, separators=(",", ":"))
        except (TypeError, ValueError):
            return None  # non-JSON params cannot come off the wire; skip the memo

    def _memo_probe(self, method: str, params: dict) -> tuple[bool, str | None, str | None]:
        """Cheap memo probe: ``(found, key_or_None, blob_or_None)``.

        Never canonicalises — a memo miss costs one ``json.dumps`` of
        the raw params, so callers on a latency-sensitive path (the
        async front's event loop) can probe inline and defer the
        expensive circuit parse to a worker thread.
        """
        blob = self._params_blob(params)
        if blob is None:
            return False, None, None
        with self._key_memo_lock:
            memo_key = (method, blob)
            if memo_key in self._key_memo:
                self._key_memo.move_to_end(memo_key)
                counters.increment("service_key_memo_hits")
                return True, self._key_memo[memo_key], blob
        return False, None, blob

    def request_key_memo(self, method: str, params: dict) -> str | None:
        """Content address for a request, memoised on its raw params.

        Canonicalisation parses the circuit/expression — tens of
        microseconds to milliseconds — so repeated requests (the whole
        point of a cache) resolve their key from a bounded LRU memo of
        the raw parameter bytes instead.  Returns ``None`` for
        uncacheable methods and unparseable payloads (memoised too: a
        payload that failed to parse once will fail again).
        """
        if method not in CACHEABLE_METHODS:
            return None
        found, key, blob = self._memo_probe(method, params)
        if found:
            return key
        try:
            key = request_key(method, params)
        except (ValueError, KeyError, TypeError):
            key = None
        if blob is not None:
            with self._key_memo_lock:
                self._key_memo[(method, blob)] = key
                self._key_memo.move_to_end((method, blob))
                while len(self._key_memo) > _KEY_MEMO_CAPACITY:
                    self._key_memo.popitem(last=False)
        return key

    def cached_encoded(self, method: str, params: dict) -> str | None:
        """Fast-path lookup: memoised key + cache probe, no admission.

        Returns the compact-encoded cached result, or ``None`` on any
        kind of miss — including a *memo* miss, where the key is not
        derived at all (deriving it parses the payload; the caller
        falls through to :meth:`submit`, which canonicalises off the
        hot path and fills the memo).  A hit counts as a submitted job
        so the ``service_jobs_submitted`` counter keeps meaning "every
        admitted request" regardless of which path answered.
        """
        if self.cache is None or method not in CACHEABLE_METHODS:
            return None
        found, key, _blob = self._memo_probe(method, params)
        if not found or key is None:
            return None
        encoded = self.cache.get_encoded(key, count_miss=False)
        if encoded is not None:
            counters.increment("service_jobs_submitted")
        return encoded

    # -- public API --------------------------------------------------------------
    def submit(self, method: str, params: dict) -> tuple[Future, dict]:
        """Admit one request; returns ``(future, info)``.

        The future resolves to a worker payload (``{"ok": ...}``) —
        never raises.  ``info`` says whether the response came from the
        cache (``cached``) or attached to an in-flight twin
        (``deduped``).
        """
        info = {"cached": False, "deduped": False}
        counters.increment("service_jobs_submitted")

        # None (uncacheable or unparseable) lets the worker produce the
        # structured error; the memo spares repeats the canonical parse.
        key = self.request_key_memo(method, params)

        if key is not None and self.cache is not None:
            hit = self.cache.get(key)
            if hit is not None:
                info["cached"] = True
                return _resolved({"ok": True, "result": hit}), info

        with self._lock:
            if self._draining or self._closed:
                return _resolved(_error_payload(
                    "draining", "server is draining and no longer accepts jobs"
                )), info
            if key is not None:
                twin = self._inflight.get(key)
                if twin is not None:
                    twin.waiters += 1
                    info["deduped"] = True
                    counters.increment("service_dedup_hits")
                    return twin.future, info
            if len(self._jobs) >= self.queue_size:
                counters.increment("service_jobs_rejected")
                return _resolved(_error_payload(
                    "overloaded",
                    f"job queue is full ({self.queue_size} active jobs)",
                )), info
            job = Job(
                job_id=self._next_id, method=method, params=params,
                key=key, future=Future(), created_at=time.monotonic(),
            )
            self._next_id += 1
            self._jobs[job.job_id] = job
            if key is not None:
                self._inflight[key] = job
            self._submit_locked(job)
            return job.future, info

    def submit_batch(self, method: str, params: dict) -> tuple[Future, dict]:
        """Admit one batch request with graceful degradation.

        A batch frame (``validate_batch``/``map_batch``) carrying N
        fault maps is first tried whole; when the bounded queue rejects
        it with ``overloaded`` the batch is *split in half and retried*
        instead of bouncing — each half is its own cacheable job, so a
        loaded server degrades into smaller work quanta rather than
        refusing campaign traffic.  A chunk shrunk all the way to one
        item waits (bounded) for a queue slot.  Every split increments
        ``service_batch_shrinks``; chunks executed for one merged batch
        show up in ``service_batch_chunks``.

        Blocks until every chunk resolves; returns ``(resolved future,
        info)`` with the same shape as :meth:`submit` so the server
        dispatch path is uniform.  Any chunk failure other than
        ``overloaded`` fails the whole batch (the resilient client
        retries it; every finished chunk is already in the cache, so the
        retry only re-executes the failed tail).
        """
        items = params.get("fault_maps")
        if method not in BATCH_METHODS or not isinstance(items, list) or len(items) < 2:
            future, info = self.submit(method, params)
            future.result()  # keep the "resolved on return" contract
            return future, info

        merged: list = []
        header: dict = {}
        chunks = 0
        all_cached = True
        any_deduped = False
        offset = 0
        chunk = len(items)
        deadline = time.monotonic() + _BATCH_RETRY_WINDOW_S
        while offset < len(items):
            sub_params = dict(params)
            sub_params["fault_maps"] = items[offset:offset + chunk]
            future, info = self.submit(method, sub_params)
            payload = future.result()
            if not payload.get("ok"):
                code = payload.get("error", {}).get("code")
                if code == "overloaded":
                    if chunk > 1:
                        chunk = max(1, chunk // 2)
                        counters.increment("service_batch_shrinks")
                        continue
                    if time.monotonic() < deadline:
                        time.sleep(_BATCH_RETRY_SLEEP_S)
                        continue
                return _resolved(payload), {"cached": False, "deduped": False}
            result = payload["result"]
            header = {
                "design_name": result.get("design_name"),
                "circuit_name": result.get("circuit_name"),
            }
            merged.extend(result.get("results", ()))
            chunks += 1
            all_cached = all_cached and info["cached"]
            any_deduped = any_deduped or info["deduped"]
            offset += chunk
            deadline = time.monotonic() + _BATCH_RETRY_WINDOW_S
        counters.increment("service_batch_chunks", chunks)
        result = dict(header)
        result["count"] = len(merged)
        result["distinct"] = len({r["signature"] for r in merged})
        result["chunks"] = chunks
        result["results"] = merged
        info = {"cached": all_cached, "deduped": any_deduped}
        return _resolved({"ok": True, "result": result}), info

    def worker_pids(self) -> list[int]:
        """PIDs of the current pool's worker processes.

        Exposed for the chaos harness (kill a worker mid-batch) and for
        operators; may be momentarily stale across a pool rebuild.
        """
        with self._lock:
            pool = self._pool
        processes = getattr(pool, "_processes", None) or {}
        return sorted(processes)

    def stats(self) -> dict:
        """Live engine state plus the ``service_*`` counters."""
        with self._lock:
            now = time.monotonic()
            running = [
                {
                    "id": job.job_id,
                    "method": job.method,
                    "pid": job.pid,
                    "elapsed_s": round(now - (job.started_at or job.created_at), 3),
                    "started": job.started_at is not None,
                    "waiters": job.waiters,
                }
                for job in self._jobs.values()
            ]
            payload = {
                "workers": self.max_workers,
                "queue_size": self.queue_size,
                "job_timeout_s": self.job_timeout,
                "active_jobs": len(self._jobs),
                "draining": self._draining,
                "jobs": running,
            }
        payload["counters"] = {
            name: value
            for name, value in sorted(counters.snapshot().items())
            if name.startswith("service_")
        }
        if self.cache is not None:
            payload["cache"] = self.cache.stats()
        return payload

    def drain(self, timeout: float = 30.0) -> bool:
        """Stop admitting jobs and wait for in-flight ones to finish.

        Returns True when everything completed within ``timeout``;
        stragglers are resolved with a ``draining`` error and their
        workers torn down.
        """
        with self._lock:
            self._draining = True
            pending = [job.future for job in self._jobs.values()]
        deadline = time.monotonic() + timeout
        clean = True
        for future in pending:
            remaining = deadline - time.monotonic()
            try:
                future.result(timeout=max(0.0, remaining))
            except Exception:  # noqa: BLE001 — drain must not raise
                clean = False
        with self._lock:
            leftovers = list(self._jobs.values())
            for job in leftovers:
                self._resolve_locked(job, _error_payload(
                    "draining", "server shut down before this job finished"
                ))
                clean = False
        return clean

    def shutdown(self, drain_timeout: float = 30.0) -> None:
        """Drain, then release the pool and monitor threads."""
        if self._closed:
            return
        self.drain(drain_timeout)
        self._closed = True
        self._stop.set()
        try:
            self._start_queue.put(None)
        except Exception:  # noqa: BLE001; check: allow C003
            pass
        self._pool.shutdown(wait=False, cancel_futures=True)
        self._start_thread.join(timeout=2.0)
        if self._timeout_thread is not None:
            self._timeout_thread.join(timeout=2.0)
        self._start_queue.close()
        self._start_queue.join_thread()

    def __enter__(self) -> "Engine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
