"""Request execution: the code a service worker (or the CLI) runs.

:func:`execute` turns one ``(method, params)`` request into a plain
JSON-serialisable payload::

    {"ok": True,  "result": {...}}
    {"ok": False, "error": {"code": ..., "message": ..., "details": {...}}}

It never raises for malformed user input — parse failures, bad
parameters and exhausted remap chains all come back as structured
error payloads with codes from :data:`repro.service.protocol.ERROR_CODES`.

The single-shot CLI (``repro synth`` / ``repro map`` / ``repro
validate``) routes through these same functions, which is what makes
``repro client`` results byte-identical to single-shot output: both
sides render the same payload.
"""

from __future__ import annotations

import time

from .protocol import MAP_BATCH_DEFAULTS, MAP_DEFAULTS, SYNTH_DEFAULTS

__all__ = ["execute"]


def _error(code: str, message: str, **details) -> dict:
    payload: dict = {"code": code, "message": str(message)}
    if details:
        payload["details"] = details
    return {"ok": False, "error": payload}


def _ok(result: dict) -> dict:
    return {"ok": True, "result": result}


def _load_function(params: dict):
    """Parse the function under synthesis from request params.

    Returns ``(evaluate, inputs, netlist_or_None, expr_or_None)``.
    Raises :class:`ValueError` (parse/semantic errors carry
    ``file:line`` context from the io layer).
    """
    if params.get("expr") is not None:
        from ..expr import parse

        expr = parse(params["expr"])
        inputs = sorted(expr.variables())
        return (lambda env: {"f": expr.evaluate(env)}), inputs, None, expr
    circuit = params.get("circuit")
    if not isinstance(circuit, dict):
        raise ValueError("request needs either 'expr' or a 'circuit' object")
    from ..io import read_blif, read_pla, read_verilog

    reader = {"verilog": read_verilog, "blif": read_blif, "pla": read_pla}.get(
        circuit.get("format")
    )
    if reader is None:
        raise ValueError(
            f"unknown circuit format {circuit.get('format')!r} (verilog|blif|pla)"
        )
    netlist = reader(circuit.get("text", ""), source=circuit.get("source", "<request>"))
    return netlist.evaluate, netlist.inputs, netlist, None


def _validation_dict(report) -> dict:
    return {
        "ok": report.ok,
        "checked": report.checked,
        "exhaustive": report.exhaustive,
        "counterexample": report.counterexample,
        "mismatched_outputs": list(report.mismatched_outputs),
    }


def _knob(params: dict, defaults: dict, name: str):
    value = params.get(name, defaults[name])
    return defaults[name] if value is None and defaults[name] is not None else value


def _synth(params: dict) -> dict:
    from ..core import Compact
    from ..crossbar import design_to_json, measure, validate_design

    reference, inputs, netlist, expr = _load_function(params)
    compact = Compact(
        gamma=float(_knob(params, SYNTH_DEFAULTS, "gamma")),
        method=_knob(params, SYNTH_DEFAULTS, "method"),
        backend=_knob(params, SYNTH_DEFAULTS, "backend"),
        time_limit=float(_knob(params, SYNTH_DEFAULTS, "time_limit")),
        jobs=int(_knob(params, SYNTH_DEFAULTS, "solver_jobs")),
        layers=int(_knob(params, SYNTH_DEFAULTS, "layers")),
        plane_method=_knob(params, SYNTH_DEFAULTS, "plane_method"),
    )
    order = params.get("order")
    if netlist is not None:
        result = compact.synthesize_netlist(netlist, order=order)
    else:
        result = compact.synthesize_expr(expr, order=order, name=params.get("name", "f"))

    design = result.design
    metrics = measure(design)
    payload: dict = {
        "design_json": design_to_json(design, indent=2),
        "design_name": design.name,
        "inputs": list(inputs),
        "metrics": metrics.as_dict(),
        "bdd_nodes": result.bdd_graph.num_nodes,
        "vh_count": result.labeling.vh_count,
        "optimal": result.optimal,
        "synth_time_s": result.synthesis_time,
        "validation": None,
    }
    if params.get("validate", SYNTH_DEFAULTS["validate"]):
        payload["validation"] = _validation_dict(validate_design(design, reference, inputs))
    return _ok(payload)


def _map(params: dict) -> dict:
    from ..crossbar import design_from_json, design_to_json, fault_map_from_json, measure
    from ..robust import RemapFailure, remap, synthesize_fault_tolerant

    reference, inputs, netlist, _expr = _load_function(params)
    if netlist is None:
        raise ValueError("map requests need a 'circuit' object (not an expression)")
    design = design_from_json(params["design_json"])
    fault_map_payload = params.get("fault_map")
    if isinstance(fault_map_payload, dict):
        import json as _json

        fault_map_payload = _json.dumps(fault_map_payload)
    fault_map = fault_map_from_json(fault_map_payload)

    knobs = {name: _knob(params, MAP_DEFAULTS, name) for name in MAP_DEFAULTS}
    resynthesized, order = False, None
    try:
        if knobs["resynthesize"]:
            ft = synthesize_fault_tolerant(
                netlist, fault_map,
                max_spare_rows=knobs["spare_rows"], max_spare_cols=knobs["spare_cols"],
                method=knobs["method"], time_limit=knobs["time_limit"],
                seed=int(knobs["seed"]),
            )
            result = ft.remap
            resynthesized, order = ft.resynthesized, ft.order
        else:
            result = remap(
                design, fault_map, reference, inputs,
                max_spare_rows=knobs["spare_rows"], max_spare_cols=knobs["spare_cols"],
                method=knobs["method"], time_limit=knobs["time_limit"],
                seed=int(knobs["seed"]),
            )
    except RemapFailure as exc:
        return _error("remap_failed", exc.diagnosis.summary())

    metrics = measure(result.design)
    return _ok({
        "design_json": design_to_json(result.design, indent=2),
        "design_name": result.design.name,
        "array": {
            "rows": fault_map.rows,
            "cols": fault_map.cols,
            "faults": len(fault_map.faults),
            "density": fault_map.density,
        },
        "metrics": {"rows": metrics.rows, "cols": metrics.cols},
        "stage": result.stage,
        "method": result.method,
        "spare_rows_used": result.spare_rows_used,
        "spare_cols_used": result.spare_cols_used,
        "displacement": result.displacement,
        "resynthesized": resynthesized,
        "order": list(order) if order else None,
        "validation": _validation_dict(result.report),
    })


def _validate(params: dict) -> dict:
    from ..check import validation_diagnostics
    from ..crossbar import design_from_json, validate_design

    reference, inputs, netlist, _expr = _load_function(params)
    design = design_from_json(params["design_json"])
    fault_map = None
    if params.get("fault_map"):
        from ..crossbar import fault_map_from_json

        fault_map = fault_map_from_json(params["fault_map"])
    try:
        report = validate_design(design, reference, inputs)
    except KeyError as exc:
        # The design reads inputs the circuit does not provide: the two
        # cannot implement the same function.
        return _error(
            "validation_failed",
            f"design and circuit have incompatible inputs (missing {exc})",
        )
    circuit_name = netlist.name if netlist is not None else "f"
    result = {
        "design_name": design.name,
        "circuit_name": circuit_name,
        "validation": _validation_dict(report),
    }
    diagnostics = validation_diagnostics(
        result["validation"], design_name=design.name, circuit_name=circuit_name
    )
    if fault_map is not None:
        from ..crossbar import validate_under_faults

        fault_report = validate_under_faults(
            design, reference, inputs, fault_map.faults
        )
        result["validation_under_faults"] = _validation_dict(fault_report)
        diagnostics += validation_diagnostics(
            result["validation_under_faults"],
            design_name=design.name,
            circuit_name=circuit_name,
            under_faults=True,
        )
    result["diagnostics"] = [d.as_dict() for d in diagnostics]
    return _ok(result)


def _load_fault_maps(params: dict) -> list:
    """Parse the ``fault_maps`` list shared by the batch request kinds.

    Raises :class:`ValueError` naming the offending list index, so a
    single malformed map fails the whole batch with a precise message
    instead of a misleading per-item verdict.
    """
    import json as _json

    from ..crossbar import fault_map_from_json

    payloads = params.get("fault_maps")
    if not isinstance(payloads, list) or not payloads:
        raise ValueError("batch requests need a non-empty 'fault_maps' list")
    maps = []
    for i, payload in enumerate(payloads):
        if isinstance(payload, dict):
            payload = _json.dumps(payload)
        try:
            maps.append(fault_map_from_json(payload))
        except (ValueError, KeyError, TypeError) as exc:
            raise ValueError(f"fault_maps[{i}]: {exc}") from exc
    return maps


def _validate_batch(params: dict) -> dict:
    """One design, N fault maps, N functional verdicts.

    Each map rides :func:`repro.crossbar.validate.validate_under_faults`
    — a masked-``on``-matrix vectorized fixpoint — and identical maps
    (same fault-class signature) are checked once and share a verdict,
    so a yield-campaign shard full of low-fault-count repeats costs a
    handful of sweeps, not N.
    """
    from ..crossbar import design_from_json, validate_under_faults

    reference, inputs, netlist, _expr = _load_function(params)
    design = design_from_json(params["design_json"])
    maps = _load_fault_maps(params)

    memo: dict[str, dict] = {}
    results = []
    for fault_map in maps:
        sig = fault_map.signature()
        verdict = memo.get(sig)
        if verdict is None:
            report = validate_under_faults(
                design, reference, inputs, fault_map.faults
            )
            verdict = {
                "ok": report.ok,
                "checked": report.checked,
                "exhaustive": report.exhaustive,
                "faults": len(fault_map.faults),
                "signature": sig,
            }
            memo[sig] = verdict
        results.append(verdict)
    return _ok({
        "design_name": design.name,
        "circuit_name": netlist.name if netlist is not None else "f",
        "count": len(results),
        "distinct": len(memo),
        "results": results,
    })


def _map_batch(params: dict) -> dict:
    """One design, N fault maps, N remap outcomes (statistics only).

    Unlike ``map``, the per-item payload carries placement statistics
    but not the remapped design artifact (a campaign wants stage
    tallies, not N design JSONs), an exhausted escalation chain is a
    per-item ``{"ok": false}`` rather than a request failure, and the
    knobs default to the deterministic greedy placer
    (:data:`~repro.service.protocol.MAP_BATCH_DEFAULTS`).  Identical
    maps share one remap attempt via the fault-class signature.
    """
    from ..crossbar import design_from_json
    from ..robust import RemapFailure, remap

    reference, inputs, netlist, _expr = _load_function(params)
    if netlist is None:
        raise ValueError("map_batch requests need a 'circuit' object (not an expression)")
    design = design_from_json(params["design_json"])
    maps = _load_fault_maps(params)
    knobs = {name: _knob(params, MAP_BATCH_DEFAULTS, name) for name in MAP_BATCH_DEFAULTS}

    memo: dict[str, dict] = {}
    results = []
    for fault_map in maps:
        sig = fault_map.signature()
        outcome = memo.get(sig)
        if outcome is None:
            try:
                placed = remap(
                    design, fault_map, reference, inputs,
                    max_spare_rows=knobs["spare_rows"],
                    max_spare_cols=knobs["spare_cols"],
                    method=knobs["method"], time_limit=knobs["time_limit"],
                    seed=int(knobs["seed"]),
                )
                outcome = {
                    "ok": True,
                    "stage": placed.stage,
                    "method": placed.method,
                    "spare_rows_used": placed.spare_rows_used,
                    "spare_cols_used": placed.spare_cols_used,
                    "displacement": placed.displacement,
                    "faults": len(fault_map.faults),
                    "signature": sig,
                }
            except RemapFailure as exc:
                outcome = {
                    "ok": False,
                    "stage": "failed",
                    "error": exc.diagnosis.summary(),
                    "faults": len(fault_map.faults),
                    "signature": sig,
                }
            memo[sig] = outcome
        results.append(outcome)
    return _ok({
        "design_name": design.name,
        "circuit_name": netlist.name,
        "count": len(results),
        "distinct": len(memo),
        "results": results,
    })


def _sleep(params: dict) -> dict:
    seconds = float(params.get("seconds", 0.0))
    if not 0.0 <= seconds <= 3600.0:
        raise ValueError("sleep seconds must lie in [0, 3600]")
    time.sleep(seconds)
    return _ok({"slept_s": seconds})


_HANDLERS = {
    "synth": _synth,
    "map": _map,
    "validate": _validate,
    "validate_batch": _validate_batch,
    "map_batch": _map_batch,
    "sleep": _sleep,
}


def execute(method: str, params: dict) -> dict:
    """Run one request to completion; never raises for bad user input."""
    handler = _HANDLERS.get(method)
    if handler is None:
        return _error("bad_request", f"method {method!r} is not executable by a worker")
    try:
        return handler(params)
    except (ValueError, KeyError, TypeError) as exc:
        code = "parse_error" if _looks_like_parse_error(exc) else "bad_request"
        return _error(code, str(exc) or type(exc).__name__)
    except MemoryError:
        return _error("internal", "worker ran out of memory executing this job")
    except Exception as exc:  # noqa: BLE001 — the wire never carries a traceback
        return _error("internal", f"{type(exc).__name__}: {exc}")


def _looks_like_parse_error(exc: Exception) -> bool:
    from ..io import BlifError, PlaError, VerilogError

    return isinstance(exc, (BlifError, PlaError, VerilogError))
