"""Fleet load generator for the synthesis service.

``repro bench service --load MIX`` drives one or more service nodes
with a deterministic, realistic request mix over hundreds of
concurrent pipelined connections and reports throughput, latency
percentiles, error rate and cache-hit economics.  It is how the async
front's headline number (cached-traffic RPS at 256 connections, vs the
threaded front) is measured, and what the ``service-load-smoke`` CI
job replays in miniature.

Mixes (all deterministic given ``seed``):

``cached``
    Every request drawn from a small pool of distinct ``synth``
    requests, pool warmed before the timed run — pure cache-hit
    traffic, the front's fast-path ceiling.
``synth-heavy``
    Mostly *distinct* synthesis requests (gamma-jittered so the key
    space never exhausts) with a cached minority — engine-bound.
``validate-heavy``
    Mostly cached ``validate`` requests over a handful of designs,
    with a minority of fresh faulted validations.
``fault-storm``
    One design, a storm of ``validate`` requests with mostly-distinct
    random fault maps (exercising the fault-map cache-key material) and
    a cached minority of repeated common maps.

The generator is closed-loop and windowed: each connection keeps
``pipeline`` requests in flight (one write, ``pipeline`` reads), which
is exactly how the campaign runner talks to the service.  Request ids
are checked against the echoed response ids, so a front that drops or
misorders frames shows up as errors, not silent corruption.

Multi-node runs start ``node_count`` in-process servers sharing one
:class:`~repro.service.remote.InMemoryRemoteTier` and split the
connections round-robin — the fleet story in one process.
"""

from __future__ import annotations

import asyncio
import json
import random
import time

from ..perf import counters
from .bench import _percentile, _random_expr
from .protocol import ProtocolError, decode_response, encode, make_request

__all__ = [
    "MIXES",
    "build_mix",
    "compare_fronts",
    "render_load_table",
    "run_load",
]

MIXES = ("cached", "synth-heavy", "validate-heavy", "fault-storm")

#: Synthesis knobs for requests and for the designs the validate mixes
#: are built on: small expressions, no solver escalation surprises.
_SYNTH_KNOBS = {"gamma": 0.5, "validate": True}


def _conn_rng(seed: int, mix: str, conn: int) -> random.Random:
    return random.Random(seed * 1_000_003 + len(mix) * 7919 + conn)


def _distinct_exprs(rng: random.Random, count: int) -> list[str]:
    exprs: list[str] = []
    seen: set[str] = set()
    while len(exprs) < count:
        expr = _random_expr(rng)
        if expr not in seen:
            seen.add(expr)
            exprs.append(expr)
    return exprs


def _synth_request(expr: str, **extra) -> dict:
    params = {"expr": expr, **_SYNTH_KNOBS, **extra}
    return {"method": "synth", "params": params}


def _build_design(expr: str) -> tuple[str, int, int]:
    """Synthesize one small design inline; ``(design_json, rows, cols)``."""
    from .jobs import execute

    payload = execute("synth", {"expr": expr, "gamma": 0.5, "validate": False})
    if not payload.get("ok"):  # pragma: no cover - tiny exprs always synthesize
        raise RuntimeError(f"load mix setup failed to synthesize {expr!r}: {payload}")
    result = payload["result"]
    metrics = result["metrics"]
    return result["design_json"], int(metrics["rows"]), int(metrics["cols"])


def _fault_map_json(rows: int, cols: int, seed: int) -> str:
    from ..crossbar import fault_map_to_json, random_fault_map

    return fault_map_to_json(
        random_fault_map(rows, cols, p_stuck_on=0.01, p_stuck_off=0.06, seed=seed)
    )


def build_mix(
    mix: str, connections: int, requests_per_conn: int, seed: int = 0
) -> dict:
    """Build a deterministic load: warmup pool + per-connection schedules.

    Returns ``{"mix", "warmup": [request, ...], "schedules":
    [[request, ...], ...]}`` with one schedule per connection.  The
    same arguments always produce the same load, byte for byte.
    """
    if mix not in MIXES:
        raise ValueError(f"unknown mix {mix!r} (known: {', '.join(MIXES)})")
    if connections < 1 or requests_per_conn < 1:
        raise ValueError("connections and requests_per_conn must be >= 1")
    rng = random.Random(seed)
    warmup: list[dict]
    schedules: list[list[dict]] = []

    if mix == "cached":
        pool = [_synth_request(expr) for expr in _distinct_exprs(rng, 8)]
        warmup = list(pool)
        for conn in range(connections):
            crng = _conn_rng(seed, mix, conn)
            schedules.append(
                [pool[crng.randrange(len(pool))] for _ in range(requests_per_conn)]
            )

    elif mix == "synth-heavy":
        pool = [_synth_request(expr) for expr in _distinct_exprs(rng, 8)]
        warmup = list(pool)
        for conn in range(connections):
            crng = _conn_rng(seed, mix, conn)
            schedule = []
            for _ in range(requests_per_conn):
                if crng.random() < 0.3:
                    schedule.append(pool[crng.randrange(len(pool))])
                else:
                    # Gamma jitter keeps distinct requests distinct no
                    # matter how large the run gets.
                    schedule.append(_synth_request(
                        _random_expr(crng), gamma=round(0.3 + 0.4 * crng.random(), 6)
                    ))
            schedules.append(schedule)

    elif mix == "validate-heavy":
        designs = []
        for expr in _distinct_exprs(rng, 4):
            design_json, rows, cols = _build_design(expr)
            designs.append((expr, design_json, rows, cols))
        pool = [
            {"method": "validate", "params": {"expr": expr, "design_json": dj}}
            for expr, dj, _r, _c in designs
        ]
        warmup = list(pool)
        for conn in range(connections):
            crng = _conn_rng(seed, mix, conn)
            schedule = []
            for i in range(requests_per_conn):
                if crng.random() < 0.85:
                    schedule.append(pool[crng.randrange(len(pool))])
                else:
                    expr, dj, rows, cols = designs[crng.randrange(len(designs))]
                    schedule.append({
                        "method": "validate",
                        "params": {
                            "expr": expr, "design_json": dj,
                            "fault_map": _fault_map_json(
                                rows, cols, seed=conn * 100_000 + i
                            ),
                        },
                    })
            schedules.append(schedule)

    else:  # fault-storm
        expr = _distinct_exprs(rng, 1)[0]
        design_json, rows, cols = _build_design(expr)
        common = [
            {
                "method": "validate",
                "params": {
                    "expr": expr, "design_json": design_json,
                    "fault_map": _fault_map_json(rows, cols, seed=1_000_000 + k),
                },
            }
            for k in range(3)
        ]
        warmup = list(common)
        for conn in range(connections):
            crng = _conn_rng(seed, mix, conn)
            schedule = []
            for i in range(requests_per_conn):
                if crng.random() < 0.25:
                    schedule.append(common[crng.randrange(len(common))])
                else:
                    schedule.append({
                        "method": "validate",
                        "params": {
                            "expr": expr, "design_json": design_json,
                            "fault_map": _fault_map_json(
                                rows, cols, seed=conn * 100_000 + i
                            ),
                        },
                    })
            schedules.append(schedule)

    return {"mix": mix, "warmup": warmup, "schedules": schedules}


# -- the async closed-loop driver ---------------------------------------------------


async def _open(spec):
    if spec[0] == "unix":
        return await asyncio.open_unix_connection(spec[1])
    return await asyncio.open_connection(spec[1], spec[2])


async def _drive_connection(spec, schedule: list[dict], pipeline: int) -> list[dict]:
    """Run one connection's schedule; one record per request, in order."""
    records: list[dict] = []
    try:
        reader, writer = await _open(spec)
    except OSError:
        return [
            {"ok": False, "cached": False, "deduped": False,
             "code": "unavailable", "latency_s": 0.0}
            for _ in schedule
        ]
    next_id = 1
    try:
        for start in range(0, len(schedule), pipeline):
            window = schedule[start:start + pipeline]
            expected_ids = list(range(next_id, next_id + len(window)))
            next_id += len(window)
            t0 = time.monotonic()
            writer.write(b"".join(
                encode(make_request(entry["method"], entry["params"], request_id=rid))
                for entry, rid in zip(window, expected_ids)
            ))
            await writer.drain()
            for rid in expected_ids:
                line = await reader.readline()
                if not line:
                    raise ConnectionError("server closed the connection")
                frame = decode_response(line)
                ok = bool(frame.get("ok")) and frame.get("id") == rid
                records.append({
                    "ok": ok,
                    "cached": bool(frame.get("cached", False)),
                    "deduped": bool(frame.get("deduped", False)),
                    "code": None if frame.get("ok") else frame["error"]["code"],
                    "latency_s": 0.0,  # stamped below, amortized per window
                })
                if frame.get("ok") and frame.get("id") != rid:
                    records[-1]["code"] = "misordered"
            window_s = (time.monotonic() - t0) / len(window)
            for record in records[-len(window):]:
                record["latency_s"] = window_s
    except (OSError, ConnectionError, ProtocolError, asyncio.IncompleteReadError):
        while len(records) < len(schedule):
            records.append({
                "ok": False, "cached": False, "deduped": False,
                "code": "unavailable", "latency_s": 0.0,
            })
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except OSError:  # check: allow C003
            pass
    return records


async def _drive(specs: list, schedules: list[list[dict]], pipeline: int) -> list[dict]:
    tasks = [
        _drive_connection(specs[conn % len(specs)], schedule, pipeline)
        for conn, schedule in enumerate(schedules)
    ]
    per_conn = await asyncio.gather(*tasks)
    return [record for conn_records in per_conn for record in conn_records]


async def _warm(specs: list, warmup: list[dict]) -> None:
    # Every node is warmed directly, so the timed run measures steady
    # state rather than first-touch remote-tier traffic.
    for spec in specs:
        await _drive_connection(spec, warmup, pipeline=1)


def _counter_delta(before: dict, after: dict) -> dict:
    return {
        name: after[name] - before.get(name, 0)
        for name in sorted(after)
        if name.startswith("service_") and after[name] != before.get(name, 0)
    }


def run_load(
    mix: str = "cached",
    connections: int = 64,
    requests_per_conn: int = 50,
    pipeline: int = 8,
    node_count: int = 1,
    front: str = "async",
    jobs: int | None = None,
    seed: int = 0,
    warmup: bool = True,
    connects: list | None = None,
    cache_size: int = 4096,
) -> dict:
    """Generate load against the service and measure it; returns a report.

    Without ``connects`` an in-process fleet of ``node_count`` servers
    (``front`` = ``"async"`` or ``"threaded"``) is started on ephemeral
    TCP ports for the duration of the run; multi-node fleets share one
    in-memory remote tier.  With ``connects`` (a list of
    :func:`~repro.service.server.parse_address` specs) the load is
    driven at running servers instead.
    """
    load = build_mix(mix, connections, requests_per_conn, seed=seed)

    servers = []
    if connects is None:
        from .remote import InMemoryRemoteTier

        if front == "async":
            from .server import ServiceServer as server_cls
        elif front == "threaded":
            from .threaded import ThreadedServiceServer as server_cls
        else:
            raise ValueError(f"unknown front {front!r} (async|threaded)")
        remote = InMemoryRemoteTier() if node_count > 1 else None
        for _ in range(max(1, node_count)):
            server = server_cls(
                ("tcp", "127.0.0.1", 0),
                jobs=jobs,
                queue_size=256,
                cache_size=cache_size,
                remote_tier=remote,
            )
            server.start()
            servers.append(server)
        connects = [server.address for server in servers]

    try:
        if warmup and load["warmup"]:
            asyncio.run(_warm(connects, load["warmup"]))
        before = counters.snapshot()
        t0 = time.monotonic()
        records = asyncio.run(_drive(connects, load["schedules"], pipeline))
        wall = time.monotonic() - t0
        after = counters.snapshot()
    finally:
        for server in servers:
            server.stop()

    latencies = sorted(r["latency_s"] for r in records)
    ok = sum(1 for r in records if r["ok"])
    cached = sum(1 for r in records if r["cached"])
    deduped = sum(1 for r in records if r["deduped"])
    total = len(records)
    return {
        "mix": mix,
        "front": front,
        "nodes": len(connects),
        "connections": connections,
        "pipeline": pipeline,
        "requests": total,
        "wall_time_s": round(wall, 6),
        "rps": round(total / wall, 3) if wall > 0 else 0.0,
        "ok": ok,
        "errors": total - ok,
        "error_rate": round((total - ok) / total, 6) if total else 0.0,
        "cache_hits": cached,
        "hit_rate": round(cached / total, 6) if total else 0.0,
        "deduped": deduped,
        "latency_ms": {
            "mean": round(1000 * sum(latencies) / total, 4) if total else 0.0,
            "p50": round(1000 * _percentile(latencies, 0.50), 4),
            "p90": round(1000 * _percentile(latencies, 0.90), 4),
            "p99": round(1000 * _percentile(latencies, 0.99), 4),
            "max": round(1000 * (latencies[-1] if latencies else 0.0), 4),
        },
        "counters": _counter_delta(before, after),
    }


def compare_fronts(
    mix: str = "cached",
    connections: int = 256,
    requests_per_conn: int = 50,
    pipeline: int = 8,
    jobs: int | None = None,
    seed: int = 0,
) -> dict:
    """Same load against the threaded and async fronts; reports the speedup.

    This is the acceptance measurement: cached-traffic RPS of the async
    front over the thread-per-connection front at high connection
    counts.
    """
    threaded = run_load(
        mix=mix, connections=connections, requests_per_conn=requests_per_conn,
        pipeline=pipeline, front="threaded", jobs=jobs, seed=seed,
    )
    async_report = run_load(
        mix=mix, connections=connections, requests_per_conn=requests_per_conn,
        pipeline=pipeline, front="async", jobs=jobs, seed=seed,
    )
    speedup = (
        async_report["rps"] / threaded["rps"] if threaded["rps"] > 0 else float("inf")
    )
    return {
        "mix": mix,
        "connections": connections,
        "threaded": threaded,
        "async": async_report,
        "speedup_rps": round(speedup, 3),
    }


def render_load_table(payload: dict):
    """Human-readable summary of a :func:`run_load` payload."""
    from ..bench.tables import Table

    table = Table(
        f"Service load: {payload['mix']} mix, {payload['front']} front "
        f"({payload['connections']} connections x {payload['nodes']} node(s))",
        ["metric", "value"],
    )
    latency = payload["latency_ms"]
    rows = [
        ("requests ok / errors", f"{payload['ok']} / {payload['errors']}"),
        ("throughput", f"{payload['rps']:.1f} req/s"),
        ("error rate", f"{100 * payload['error_rate']:.2f}%"),
        ("cache hits", f"{payload['cache_hits']} ({100 * payload['hit_rate']:.1f}%)"),
        ("deduped in-flight", str(payload["deduped"])),
        ("latency mean", f"{latency['mean']:.2f} ms"),
        ("latency p50", f"{latency['p50']:.2f} ms"),
        ("latency p90", f"{latency['p90']:.2f} ms"),
        ("latency p99", f"{latency['p99']:.2f} ms"),
        ("latency max", f"{latency['max']:.2f} ms"),
    ]
    for name, value in rows:
        table.add_row(name, value)
    return table


def _json_default(value):  # pragma: no cover - defensive
    return str(value)


def dump_report(payload: dict) -> str:
    """Stable JSON rendering of a load report."""
    return json.dumps(payload, indent=2, sort_keys=True, default=_json_default)
