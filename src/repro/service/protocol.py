"""Wire protocol for the synthesis service: versioned NDJSON frames.

One request or response per line, UTF-8 JSON, newline-terminated.  The
schema is versioned (``v``) so clients and servers can reject frames
they do not understand instead of mis-parsing them.

Request frame::

    {"v": 1, "id": "<client-chosen>", "method": "synth", "params": {...}}

Response frame (success)::

    {"v": 1, "id": "<echoed>", "ok": true, "cached": false,
     "deduped": false, "elapsed_s": 0.12, "result": {...}}

Response frame (failure)::

    {"v": 1, "id": "<echoed>", "ok": false,
     "error": {"code": "parse_error", "message": "...", "details": {...}}}

Errors are always structured objects with a code from
:data:`ERROR_CODES` — a stack trace never crosses the wire.
"""

from __future__ import annotations

import json

__all__ = [
    "PROTOCOL_VERSION",
    "METHODS",
    "CACHEABLE_METHODS",
    "BATCH_METHODS",
    "ERROR_CODES",
    "MAX_LINE_BYTES",
    "SYNTH_DEFAULTS",
    "MAP_DEFAULTS",
    "MAP_BATCH_DEFAULTS",
    "ProtocolError",
    "make_request",
    "ok_response",
    "error_response",
    "encode",
    "decode_request",
    "decode_response",
]

#: Bump on breaking changes to the frame layout.
PROTOCOL_VERSION = 1

#: Every method the server dispatches.  ``sleep`` is a diagnostics
#: method (the worker sleeps for ``params.seconds``): it gives tests and
#: operators a deterministic long-running job for exercising timeouts,
#: queue limits and crash recovery.  ``validate_batch``/``map_batch``
#: carry one design and N fault maps in a single frame, amortizing
#: protocol and cache overhead for yield campaigns.
METHODS = (
    "synth", "map", "validate", "validate_batch", "map_batch",
    "stats", "ping", "sleep",
)

#: Methods whose results are deterministic functions of their request
#: and therefore content-addressable (cached + deduplicated).
CACHEABLE_METHODS = frozenset({"synth", "map", "validate", "validate_batch", "map_batch"})

#: Methods that carry a ``fault_maps`` list the engine may split into
#: smaller chunks under load (graceful degradation) instead of bouncing
#: the whole request with ``overloaded``.
BATCH_METHODS = frozenset({"validate_batch", "map_batch"})

#: Structured error codes.  ``parse_error``/``bad_request`` are the
#: caller's fault (CLI maps them to exit code 2); the rest are
#: operational (exit code 1).
ERROR_CODES = (
    "protocol_error",    # malformed frame / wrong version / unknown method
    "parse_error",       # circuit/design/fault-map payload failed to parse
    "bad_request",       # well-formed but semantically invalid params
    "remap_failed",      # the remap escalation chain was exhausted
    "validation_failed", # a synthesized design failed its equivalence check
    "timeout",           # the per-job budget expired; the job was killed
    "worker_crash",      # the worker process died while running the job
    "overloaded",        # the bounded job queue is full
    "draining",          # the server is shutting down gracefully
    "internal",          # anything else; message is sanitized
)

#: Upper bound on one NDJSON frame; guards the server against
#: unbounded buffering on a hostile or broken connection.
MAX_LINE_BYTES = 32 * 1024 * 1024

#: Default synthesis knobs, shared by the job executor and the cache
#: key derivation so that an omitted parameter and its explicit default
#: hash to the same request.
SYNTH_DEFAULTS: dict = {
    "gamma": 0.5,
    "method": "auto",
    "backend": "highs",
    "time_limit": 60.0,
    "solver_jobs": 1,
    "validate": True,
    "order": None,
    "layers": 1,
    "plane_method": "auto",
}

#: Default remap knobs (mirrors the ``repro map`` CLI defaults).
MAP_DEFAULTS: dict = {
    "spare_rows": None,
    "spare_cols": None,
    "method": "auto",
    "time_limit": 10.0,
    "seed": 0,
    "resynthesize": False,
}

#: Default ``map_batch`` knobs.  The campaign runner's dedup and its
#: bit-identical resume guarantee both require per-map determinism, so
#: the batch kind defaults to the deterministic greedy placer (the MILP
#: fallback's time-limit preemption makes outcomes load-dependent) and
#: never resynthesizes.
MAP_BATCH_DEFAULTS: dict = {
    "spare_rows": None,
    "spare_cols": None,
    "method": "greedy",
    "time_limit": 10.0,
    "seed": 0,
}


class ProtocolError(ValueError):
    """A frame violated the wire protocol (not a job-level failure)."""

    def __init__(self, message: str, code: str = "protocol_error"):
        super().__init__(message)
        self.code = code


def make_request(method: str, params: dict | None = None, request_id: str | int = 0) -> dict:
    """Build a request frame (validated the same way the server would)."""
    frame = {
        "v": PROTOCOL_VERSION,
        "id": request_id,
        "method": method,
        "params": dict(params or {}),
    }
    _check_request(frame)
    return frame


def ok_response(
    request_id,
    result: dict,
    *,
    cached: bool = False,
    deduped: bool = False,
    elapsed_s: float = 0.0,
) -> dict:
    """Build a success response frame."""
    return {
        "v": PROTOCOL_VERSION,
        "id": request_id,
        "ok": True,
        "cached": bool(cached),
        "deduped": bool(deduped),
        "elapsed_s": round(float(elapsed_s), 6),
        "result": result,
    }


def error_response(request_id, code: str, message: str, details: dict | None = None) -> dict:
    """Build a failure response frame with a structured error object."""
    if code not in ERROR_CODES:
        code = "internal"
    error: dict = {"code": code, "message": str(message)}
    if details:
        error["details"] = details
    return {"v": PROTOCOL_VERSION, "id": request_id, "ok": False, "error": error}


def encode(frame: dict) -> bytes:
    """Serialise one frame to a newline-terminated NDJSON byte string."""
    return json.dumps(frame, separators=(",", ":"), sort_keys=True).encode() + b"\n"


def _decode_line(line: bytes | str) -> dict:
    if isinstance(line, bytes):
        if len(line) > MAX_LINE_BYTES:
            raise ProtocolError(f"frame exceeds {MAX_LINE_BYTES} bytes")
        try:
            line = line.decode()
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"frame is not valid UTF-8: {exc}") from exc
    try:
        frame = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"frame is not valid JSON: {exc}") from exc
    if not isinstance(frame, dict):
        raise ProtocolError(f"frame must be an object, got {type(frame).__name__}")
    version = frame.get("v")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"unsupported protocol version {version!r} (this side speaks {PROTOCOL_VERSION})"
        )
    return frame


def _check_request(frame: dict) -> dict:
    method = frame.get("method")
    if method not in METHODS:
        raise ProtocolError(f"unknown method {method!r} (known: {', '.join(METHODS)})")
    params = frame.get("params")
    if not isinstance(params, dict):
        raise ProtocolError(f"params must be an object, got {type(params).__name__}")
    if "id" not in frame or isinstance(frame["id"], (dict, list)):
        raise ProtocolError("request id must be a JSON scalar")
    return frame


def decode_request(line: bytes | str) -> dict:
    """Parse and validate one request frame; raises :class:`ProtocolError`."""
    return _check_request(_decode_line(line))


def decode_response(line: bytes | str) -> dict:
    """Parse and validate one response frame; raises :class:`ProtocolError`."""
    frame = _decode_line(line)
    if "ok" not in frame:
        raise ProtocolError("response frame missing 'ok'")
    if frame["ok"]:
        if not isinstance(frame.get("result"), dict):
            raise ProtocolError("success response missing 'result' object")
    else:
        error = frame.get("error")
        if not isinstance(error, dict) or "code" not in error or "message" not in error:
            raise ProtocolError("failure response missing structured 'error' object")
    return frame
