"""Pluggable remote tier: N service nodes sharing one result space.

A :class:`RemoteTier` is the third level of the service cache
(:class:`repro.service.cache.ResultCache` probes memory, then local
disk, then the remote tier).  The contract is tiny and strict:

* ``get(key)`` returns the *compact-encoded* JSON result string for a
  content-addressed key, or ``None``.  It may raise — the cache treats
  any exception as a miss.
* ``put(key, method, encoded)`` stores one entry, best effort.  Writes
  must be atomic per key (a reader never observes a torn entry).

Because cache keys are content addresses, the tier needs no
invalidation protocol: an entry is either absent or correct, and
concurrent writers for one key write identical bytes.  That is what
makes the tier safe to share across nodes without coordination.

Two reference implementations ship here:

:class:`DirectoryRemoteTier`
    A shared filesystem directory (NFS mount, bind mount, …) reusing
    the cache's durable entry format — the practical way to pool the
    result space of a small fleet.  Entries written by any node are
    readable by all.

:class:`InMemoryRemoteTier`
    A process-local dict behind a lock — the multi-node story in one
    process, used by the fleet load benchmark and the test suite (and a
    template for a real network tier: subclass and speak to whatever
    store you run).
"""

from __future__ import annotations

import threading
from pathlib import Path

__all__ = ["DirectoryRemoteTier", "InMemoryRemoteTier", "RemoteTier"]


class RemoteTier:
    """Interface for a shared result tier behind the local cache."""

    def get(self, key: str) -> str | None:  # pragma: no cover - interface
        raise NotImplementedError

    def put(self, key: str, method: str, encoded: str) -> None:  # pragma: no cover
        raise NotImplementedError

    def close(self) -> None:
        """Release any connections; the default tier holds none."""


class InMemoryRemoteTier(RemoteTier):
    """A shared dict — one result space for in-process node fleets."""

    def __init__(self):
        self._lock = threading.Lock()
        self._entries: dict[str, str] = {}

    def get(self, key: str) -> str | None:
        with self._lock:
            return self._entries.get(key)

    def put(self, key: str, method: str, encoded: str) -> None:
        with self._lock:
            self._entries[key] = encoded

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


class DirectoryRemoteTier(RemoteTier):
    """A shared directory of durable JSON entries (one file per key).

    Reuses the local disk store's entry format and atomic write
    protocol (:func:`repro.service.cache.read_entry` /
    :func:`repro.service.cache.write_entry`), so a node's local cache
    directory and a fleet's shared tier are interchangeable on disk.
    """

    def __init__(self, directory: str | Path):
        self._dir = Path(directory)
        self._dir.mkdir(parents=True, exist_ok=True)

    def get(self, key: str) -> str | None:
        from .cache import read_entry

        return read_entry(self._dir / f"{key}.json")

    def put(self, key: str, method: str, encoded: str) -> None:
        from .cache import write_entry

        write_entry(self._dir, key, method, encoded)
