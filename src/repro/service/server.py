"""Persistent synthesis server: NDJSON over a Unix or TCP socket.

One thread per connection; each connection is a sequential pipeline of
request frames (see :mod:`repro.service.protocol`).  ``ping`` and
``stats`` are answered inline; ``synth``/``map``/``validate``/``sleep``
go through the :class:`~repro.service.engine.Engine` — which is where
caching, deduplication, timeouts and crash recovery live.

Shutdown is graceful: SIGTERM/SIGINT (or :meth:`ServiceServer.stop`)
stops accepting connections, lets in-flight jobs finish up to a drain
deadline, answers any late frames on open connections with a
structured ``draining`` error, then tears the pool down.
"""

from __future__ import annotations

import signal
import socketserver
import threading
import time
from pathlib import Path

from . import __version__ as _service_version
from .cache import ResultCache
from .engine import Engine
from .protocol import (
    BATCH_METHODS,
    ProtocolError,
    decode_request,
    encode,
    error_response,
    ok_response,
)

__all__ = ["ServiceServer", "parse_address"]


def parse_address(socket_path: str | None, tcp: str | None):
    """Normalise CLI address flags into ``("unix", path)`` / ``("tcp", host, port)``."""
    if (socket_path is None) == (tcp is None):
        raise ValueError("choose exactly one of --socket PATH or --tcp HOST:PORT")
    if socket_path is not None:
        return ("unix", socket_path)
    host, sep, port = tcp.rpartition(":")
    if not sep or not host:
        raise ValueError(f"--tcp expects HOST:PORT, got {tcp!r}")
    try:
        return ("tcp", host, int(port))
    except ValueError as exc:
        raise ValueError(f"--tcp expects a numeric port, got {port!r}") from exc


class _Handler(socketserver.StreamRequestHandler):
    def handle(self) -> None:  # pragma: no cover - exercised via e2e tests
        service: ServiceServer = self.server.service  # type: ignore[attr-defined]
        for raw in self.rfile:
            line = raw.strip()
            if not line:
                continue
            response = service.handle_line(line)
            try:
                self.wfile.write(encode(response))
                self.wfile.flush()
            except (BrokenPipeError, ConnectionResetError, OSError):
                break


class _ThreadingTCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


if hasattr(socketserver, "ThreadingUnixStreamServer"):

    class _ThreadingUnixServer(socketserver.ThreadingUnixStreamServer):
        daemon_threads = True

else:  # pragma: no cover - non-POSIX platforms
    _ThreadingUnixServer = None


class ServiceServer:
    """A running synthesis service bound to one socket address.

    Parameters mirror ``repro serve``: ``address`` comes from
    :func:`parse_address`; ``jobs``/``queue_size``/``job_timeout``
    configure the engine; ``cache_dir``/``cache_size`` the result
    cache (``cache_size == 0`` disables caching entirely).
    """

    def __init__(
        self,
        address,
        jobs: int | None = None,
        queue_size: int = 64,
        job_timeout: float | None = None,
        cache_dir: str | Path | None = None,
        cache_size: int = 256,
        drain_timeout: float = 30.0,
    ):
        self._address_spec = address
        self._drain_timeout = drain_timeout
        cache = None
        if cache_size > 0:
            cache = ResultCache(capacity=cache_size, directory=cache_dir)
        self.cache = cache
        self.engine = Engine(
            jobs=jobs, queue_size=queue_size, job_timeout=job_timeout, cache=cache
        )
        self._server = None
        self._thread = None
        self._draining = False
        self._started_at = time.monotonic()

    # -- lifecycle ---------------------------------------------------------------
    def start(self) -> None:
        """Bind the socket and serve in a background thread."""
        if self._address_spec[0] == "unix":
            if _ThreadingUnixServer is None:  # pragma: no cover
                raise ValueError("unix sockets are not supported on this platform")
            path = Path(self._address_spec[1])
            if path.exists():
                path.unlink()
            self._server = _ThreadingUnixServer(str(path), _Handler)
        else:
            _kind, host, port = self._address_spec
            self._server = _ThreadingTCPServer((host, port), _Handler)
        self._server.service = self  # type: ignore[attr-defined]
        self._started_at = time.monotonic()
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="service-accept",
            daemon=True,
        )
        self._thread.start()

    def stop(self) -> None:
        """Graceful shutdown: stop accepting, drain, release everything."""
        self._draining = True
        if self._server is not None:
            self._server.shutdown()
        self.engine.shutdown(self._drain_timeout)
        if self._server is not None:
            self._server.server_close()
            self._server = None
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None
        if self._address_spec[0] == "unix":
            try:
                Path(self._address_spec[1]).unlink()
            except OSError:  # check: allow C003
                pass

    def serve_until_signal(self) -> None:
        """Block the (already started) server until SIGTERM or SIGINT."""
        stop_event = threading.Event()

        def _on_signal(signum, _frame):  # pragma: no cover - signal path
            stop_event.set()

        previous = {
            sig: signal.signal(sig, _on_signal)
            for sig in (signal.SIGTERM, signal.SIGINT)
        }
        try:
            stop_event.wait()
        finally:
            for sig, handler in previous.items():
                signal.signal(sig, handler)

    def serve_forever(self) -> None:
        """Blocking entry point: start, run until SIGTERM/SIGINT, drain."""
        self.start()
        try:
            self.serve_until_signal()
        finally:
            self.stop()

    def __enter__(self) -> "ServiceServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- introspection -----------------------------------------------------------
    @property
    def address(self):
        """The bound address (TCP port resolved after :meth:`start`)."""
        if self._address_spec[0] == "unix":
            return self._address_spec
        if self._server is not None:
            host, port = self._server.server_address[:2]
            return ("tcp", host, port)
        return self._address_spec

    def describe_address(self) -> str:
        spec = self.address
        return spec[1] if spec[0] == "unix" else f"{spec[1]}:{spec[2]}"

    def stats(self) -> dict:
        payload = {
            "server": {
                "version": _service_version,
                "address": self.describe_address(),
                "transport": self.address[0],
                "uptime_s": round(time.monotonic() - self._started_at, 3),
                "draining": self._draining,
            },
            "engine": self.engine.stats(),
        }
        return payload

    # -- request dispatch --------------------------------------------------------
    def handle_line(self, line: bytes) -> dict:
        """Turn one request frame into one response frame (never raises)."""
        try:
            request = decode_request(line)
        except ProtocolError as exc:
            return error_response(None, exc.code, str(exc))
        request_id, method = request["id"], request["method"]
        t0 = time.monotonic()
        if method == "ping":
            return ok_response(request_id, {"pong": True}, elapsed_s=time.monotonic() - t0)
        if method == "stats":
            return ok_response(request_id, self.stats(), elapsed_s=time.monotonic() - t0)
        if self._draining:
            return error_response(
                request_id, "draining", "server is draining and no longer accepts jobs"
            )
        if method in BATCH_METHODS:
            # Batch frames degrade under load (shrink, don't reject).
            future, info = self.engine.submit_batch(method, request["params"])
        else:
            future, info = self.engine.submit(method, request["params"])
        payload = future.result()
        elapsed = time.monotonic() - t0
        if payload.get("ok"):
            return ok_response(
                request_id,
                payload["result"],
                cached=info["cached"],
                deduped=info["deduped"],
                elapsed_s=elapsed,
            )
        error = payload["error"]
        return error_response(
            request_id, error["code"], error["message"], error.get("details")
        )
