"""Persistent synthesis server: NDJSON over a Unix or TCP socket.

The default front (:class:`ServiceServer`) is an **asyncio socket
server**: one event-loop thread multiplexes thousands of concurrent
connections, answering protocol errors, ``ping``/``stats`` and —
crucially — *cached* requests inline, and handing everything else to
the :class:`~repro.service.engine.Engine` through a small dispatch
thread pool (which is where caching, deduplication, timeouts and crash
recovery live).  The classic one-thread-per-connection front survives
as :class:`repro.service.threaded.ThreadedServiceServer`; both speak
the identical wire protocol and produce byte-identical frames.

Fast path anatomy (what makes cached traffic ~10k+ RPS on one box):

* frames are read in batches — one ``recv`` of a pipelined connection
  yields many frames, answered with a single coalesced write;
* homogeneous frames inside one batch share a single cache lookup
  (``service_batch_coalesced``);
* the request's content address comes from a bounded memo of the raw
  parameter bytes (``service_key_memo_hits``) — no re-parse;
* the cached result string is spliced verbatim into the response frame
  (no JSON decode/encode round trip), byte-identical to
  :func:`~repro.service.protocol.encode` output.

Shutdown is graceful: SIGTERM/SIGINT (or :meth:`ServiceServer.stop`)
stops accepting connections, answers frames arriving after the drain
began with a structured ``draining`` error (the admission check and the
engine's own drain flag close the old check-then-submit race), lets
in-flight jobs finish up to a drain deadline, then tears everything
down.  Every wait on a job future is *bounded* by the job timeout plus
the drain deadline, so a lost future can never pin a connection
forever.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import json
import signal
import threading
import time
from pathlib import Path

from ..perf import counters
from . import __version__ as _service_version
from .cache import ResultCache
from .engine import Engine
from .protocol import (
    BATCH_METHODS,
    CACHEABLE_METHODS,
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    decode_request,
    encode,
    error_response,
    ok_response,
)

__all__ = [
    "ServiceServer",
    "ServiceServerBase",
    "fast_ok_frame",
    "format_address",
    "parse_address",
]

_DRAINING_MESSAGE = "server is draining and no longer accepts jobs"
_READ_CHUNK = 1 << 16
#: Frames handled per connection batch; bounds per-batch latency and
#: memory while still amortizing one write over a pipelined burst.
_MAX_BATCH_FRAMES = 256
#: Poll period for bounded future waits (drain/lost-future detection).
_WAIT_TICK_S = 0.25


def parse_address(socket_path: str | None, tcp: str | None):
    """Normalise CLI address flags into ``("unix", path)`` / ``("tcp", host, port)``.

    Bracketed IPv6 literals are accepted and unbracketed:
    ``--tcp [::1]:8080`` yields ``("tcp", "::1", 8080)``.
    """
    if (socket_path is None) == (tcp is None):
        raise ValueError("choose exactly one of --socket PATH or --tcp HOST:PORT")
    if socket_path is not None:
        return ("unix", socket_path)
    host, sep, port = tcp.rpartition(":")
    if not sep or not host:
        raise ValueError(f"--tcp expects HOST:PORT, got {tcp!r}")
    if host.startswith("["):
        if not host.endswith("]") or len(host) < 3:
            raise ValueError(f"--tcp expects [IPV6-ADDR]:PORT, got {tcp!r}")
        host = host[1:-1]
    elif host.endswith("]"):
        raise ValueError(f"--tcp expects [IPV6-ADDR]:PORT, got {tcp!r}")
    try:
        return ("tcp", host, int(port))
    except ValueError as exc:
        raise ValueError(f"--tcp expects a numeric port, got {port!r}") from exc


def format_address(spec) -> str:
    """Render an address spec back to CLI form (IPv6 hosts re-bracketed)."""
    if spec[0] == "unix":
        return spec[1]
    host = spec[1]
    if ":" in host:
        host = f"[{host}]"
    return f"{host}:{spec[2]}"


def fast_ok_frame(
    request_id,
    encoded_result: str,
    *,
    cached: bool = True,
    deduped: bool = False,
    elapsed_s: float = 0.0,
) -> bytes:
    """A success frame with the encoded result spliced in verbatim.

    Byte-identical to ``encode(ok_response(...))`` for the same data
    (the cache stores results compact/sorted, exactly as ``encode``
    would re-emit them) — asserted by a property test — while skipping
    the result's JSON decode/encode round trip on the cached hot path.
    """
    return (
        '{"cached":%s,"deduped":%s,"elapsed_s":%s,"id":%s,"ok":true,"result":%s,"v":%d}\n'
        % (
            "true" if cached else "false",
            "true" if deduped else "false",
            json.dumps(round(float(elapsed_s), 6)),
            json.dumps(request_id),
            encoded_result,
            PROTOCOL_VERSION,
        )
    ).encode()


def _error_payload(code: str, message: str) -> dict:
    return {"ok": False, "error": {"code": code, "message": message}}


class ServiceServerBase:
    """Configuration, engine/cache wiring and dispatch shared by both fronts.

    Parameters mirror ``repro serve``: ``address`` comes from
    :func:`parse_address`; ``jobs``/``queue_size``/``job_timeout``
    configure the engine; ``cache_dir``/``cache_size``/``cache_shards``
    the result cache (``cache_size == 0`` disables caching entirely);
    ``remote_tier`` plugs a shared fleet tier
    (:mod:`repro.service.remote`) behind the local cache.
    """

    front = "base"

    def __init__(
        self,
        address,
        jobs: int | None = None,
        queue_size: int = 64,
        job_timeout: float | None = None,
        cache_dir: str | Path | None = None,
        cache_size: int = 256,
        drain_timeout: float = 30.0,
        cache_shards: int = 8,
        remote_tier=None,
    ):
        self._address_spec = address
        self._drain_timeout = drain_timeout
        cache = None
        if cache_size > 0:
            cache = ResultCache(
                capacity=cache_size,
                directory=cache_dir,
                shards=cache_shards,
                remote=remote_tier,
            )
        self.cache = cache
        self.engine = Engine(
            jobs=jobs, queue_size=queue_size, job_timeout=job_timeout, cache=cache
        )
        self._draining = False
        self._drain_deadline: float | None = None
        self._started_at = time.monotonic()

    # -- lifecycle hooks (front-specific) ----------------------------------------
    def start(self) -> None:  # pragma: no cover - overridden
        raise NotImplementedError

    def stop(self) -> None:  # pragma: no cover - overridden
        raise NotImplementedError

    def connection_count(self) -> int:
        return 0

    # -- shared lifecycle --------------------------------------------------------
    def serve_until_signal(self) -> None:
        """Block the (already started) server until SIGTERM or SIGINT."""
        stop_event = threading.Event()

        def _on_signal(signum, _frame):  # pragma: no cover - signal path
            stop_event.set()

        previous = {
            sig: signal.signal(sig, _on_signal)
            for sig in (signal.SIGTERM, signal.SIGINT)
        }
        try:
            stop_event.wait()
        finally:
            for sig, handler in previous.items():
                signal.signal(sig, handler)

    def serve_forever(self) -> None:
        """Blocking entry point: start, run until SIGTERM/SIGINT, drain."""
        self.start()
        try:
            self.serve_until_signal()
        finally:
            self.stop()

    def __enter__(self):
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def _begin_drain(self) -> None:
        self._draining = True
        if self._drain_deadline is None:
            # Small grace on top of the engine's drain budget: the
            # engine resolves stragglers at the deadline, connection
            # handlers just need to observe that and answer.
            self._drain_deadline = time.monotonic() + self._drain_timeout + 2.0

    def _unlink_unix_socket(self) -> None:
        if self._address_spec[0] == "unix":
            try:
                Path(self._address_spec[1]).unlink()
            except OSError:  # check: allow C003
                pass

    # -- introspection -----------------------------------------------------------
    @property
    def address(self):
        """The bound address (TCP port resolved after :meth:`start`)."""
        if self._address_spec[0] == "unix":
            return self._address_spec
        bound = self._bound_tcp_address()
        if bound is not None:
            return ("tcp", bound[0], bound[1])
        return self._address_spec

    def _bound_tcp_address(self):  # pragma: no cover - overridden
        return None

    def describe_address(self) -> str:
        return format_address(self.address)

    def stats(self) -> dict:
        return {
            "server": {
                "version": _service_version,
                "address": self.describe_address(),
                "transport": self.address[0],
                "front": self.front,
                "connections": self.connection_count(),
                "uptime_s": round(time.monotonic() - self._started_at, 3),
                "draining": self._draining,
            },
            "engine": self.engine.stats(),
        }

    # -- dispatch helpers shared by both fronts ----------------------------------
    def _inline_response(self, request: dict, t0: float) -> dict | None:
        """Answer ``ping``/``stats``/draining without touching the engine."""
        request_id, method = request["id"], request["method"]
        if method == "ping":
            return ok_response(
                request_id, {"pong": True}, elapsed_s=time.monotonic() - t0
            )
        if method == "stats":
            return ok_response(request_id, self.stats(), elapsed_s=time.monotonic() - t0)
        if self._draining:
            return error_response(request_id, "draining", _DRAINING_MESSAGE)
        return None

    def _bound_payload_wait(self, future) -> dict:
        """``future.result()`` that can never pin a connection forever.

        Bounded by the job timeout plus the drain deadline: the old
        front's unbounded ``result()`` hung its connection thread when
        a future was lost (and during shutdown the hung thread held a
        connection open past the drain).  The engine's drain resolves
        every future it knows about; this is the belt-and-braces bound
        for the ones it does not.
        """
        job_deadline = None
        if self.engine.job_timeout is not None:
            job_deadline = (
                time.monotonic() + self.engine.job_timeout + self._drain_timeout + 5.0
            )
        while True:
            try:
                return future.result(timeout=_WAIT_TICK_S)
            except concurrent.futures.TimeoutError:
                now = time.monotonic()
                if self._drain_deadline is not None and now >= self._drain_deadline:
                    return _error_payload(
                        "draining", "server shut down before this job finished"
                    )
                if job_deadline is not None and now >= job_deadline:
                    return _error_payload(
                        "timeout",
                        "job result was not produced within the job timeout "
                        "plus drain budget",
                    )
            except Exception as exc:  # noqa: BLE001 — a future must never tear a connection
                return _error_payload("internal", f"{type(exc).__name__}: {exc}")

    def _payload_response(self, request_id, payload: dict, info: dict, t0: float) -> dict:
        if payload.get("ok"):
            return ok_response(
                request_id,
                payload["result"],
                cached=info["cached"],
                deduped=info["deduped"],
                elapsed_s=time.monotonic() - t0,
            )
        error = payload["error"]
        return error_response(
            request_id, error["code"], error["message"], error.get("details")
        )


class ServiceServer(ServiceServerBase):
    """The asyncio front: one loop thread, thousands of connections."""

    front = "async"

    def __init__(self, *args, io_workers: int = 8, **kwargs):
        super().__init__(*args, **kwargs)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._loop_thread: threading.Thread | None = None
        self._asyncio_server: asyncio.AbstractServer | None = None
        self._conn_tasks: set[asyncio.Task] = set()
        self._connections = 0
        # Engine admission (which may canonicalise = parse circuits) and
        # blocking batch submission run here, off the event loop.
        self._dispatch = concurrent.futures.ThreadPoolExecutor(
            max_workers=max(2, io_workers), thread_name_prefix="service-dispatch"
        )

    # -- lifecycle ---------------------------------------------------------------
    def start(self) -> None:
        """Bind the socket and serve from a dedicated event-loop thread."""
        if self._loop is not None:
            raise RuntimeError("server is already started")
        self._loop = asyncio.new_event_loop()
        ready = threading.Event()

        def _run() -> None:
            asyncio.set_event_loop(self._loop)
            ready.set()
            self._loop.run_forever()
            # Drain callbacks scheduled during the final stop, then close.
            pending = asyncio.all_tasks(self._loop)
            for task in pending:
                task.cancel()
            if pending:
                self._loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
            self._loop.close()

        self._loop_thread = threading.Thread(
            target=_run, name="service-loop", daemon=True
        )
        self._loop_thread.start()
        ready.wait()
        self._call(self._open_listener(), timeout=30.0)
        self._started_at = time.monotonic()

    def _call(self, coro, timeout: float | None = None):
        return asyncio.run_coroutine_threadsafe(coro, self._loop).result(timeout)

    async def _open_listener(self) -> None:
        if self._address_spec[0] == "unix":
            path = Path(self._address_spec[1])
            if path.exists():
                path.unlink()
            self._asyncio_server = await asyncio.start_unix_server(
                self._handle_connection, path=str(path)
            )
        else:
            _kind, host, port = self._address_spec
            self._asyncio_server = await asyncio.start_server(
                self._handle_connection, host=host, port=port,
                reuse_address=True, backlog=1024,
            )

    def stop(self) -> None:
        """Graceful shutdown: stop accepting, drain, release everything."""
        if self._loop is None:
            self._begin_drain()
            self.engine.shutdown(self._drain_timeout)
            self._dispatch.shutdown(wait=False, cancel_futures=True)
            return
        self._call(self._close_listener(), timeout=10.0)
        # Blocks until in-flight jobs finish (or the drain deadline):
        # the loop keeps running meanwhile, so handlers receive their
        # results and write the final frames during this wait.
        self.engine.shutdown(self._drain_timeout)
        try:
            self._call(self._close_connections(grace_s=3.0), timeout=15.0)
        except (concurrent.futures.TimeoutError, RuntimeError):  # check: allow C003
            pass
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._loop_thread.join(timeout=5.0)
        self._loop = None
        self._loop_thread = None
        self._asyncio_server = None
        self._dispatch.shutdown(wait=False, cancel_futures=True)
        self._unlink_unix_socket()

    async def _close_listener(self) -> None:
        self._begin_drain()
        if self._asyncio_server is not None:
            self._asyncio_server.close()

    async def _close_connections(self, grace_s: float) -> None:
        tasks = {task for task in self._conn_tasks if not task.done()}
        if tasks:
            # Handlers are finishing their final writes now that the
            # engine resolved everything; give them a moment.
            await asyncio.wait(tasks, timeout=grace_s)
        for task in self._conn_tasks:
            if not task.done():
                task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        self._conn_tasks.clear()

    # -- introspection -----------------------------------------------------------
    def _bound_tcp_address(self):
        server = self._asyncio_server
        if server is None or not server.sockets:
            return None
        name = server.sockets[0].getsockname()
        return name[0], name[1]

    def connection_count(self) -> int:
        return self._connections

    # -- connection handling -----------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        self._connections += 1
        buf = bytearray()
        try:
            while True:
                data = await reader.read(_READ_CHUNK)
                if not data:
                    break
                buf += data
                if b"\n" not in data:
                    if len(buf) > MAX_LINE_BYTES:
                        writer.write(encode(error_response(
                            None, "protocol_error",
                            f"frame exceeds {MAX_LINE_BYTES} bytes",
                        )))
                        await writer.drain()
                        break
                    continue
                while True:
                    lines = self._split_frames(buf)
                    if not lines:
                        break
                    out = await self._process_frames(lines)
                    writer.write(b"".join(out))
                    await writer.drain()
        except (ConnectionResetError, BrokenPipeError, OSError):  # check: allow C003
            pass
        except asyncio.CancelledError:  # server shutdown mid-connection
            pass
        finally:
            self._connections -= 1
            self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (OSError, asyncio.CancelledError):  # check: allow C003
                pass

    @staticmethod
    def _split_frames(buf: bytearray) -> list[bytes]:
        """Pop up to ``_MAX_BATCH_FRAMES`` complete lines off ``buf``."""
        lines: list[bytes] = []
        while len(lines) < _MAX_BATCH_FRAMES:
            newline = buf.find(b"\n")
            if newline < 0:
                break
            line = bytes(buf[:newline]).strip()
            del buf[: newline + 1]
            if line:
                lines.append(line)
        return lines

    async def _process_frames(self, lines: list[bytes]) -> list[bytes]:
        """Turn one batch of frames into one ordered batch of responses.

        Inline work (protocol errors, ping/stats, draining rejections,
        cached hits) is answered on the loop; everything else is
        dispatched concurrently and awaited in order, so responses stay
        sequential per connection while the engine runs the batch's
        misses in parallel.
        """
        loop = asyncio.get_running_loop()
        results: list[bytes | asyncio.Task] = [b""] * len(lines)
        # Coalescing: homogeneous cached frames inside one pipelined
        # batch share a single key-derivation + cache lookup.
        batch_hits: dict[tuple[str, str], str] = {}
        for i, line in enumerate(lines):
            try:
                request = decode_request(line)
            except ProtocolError as exc:
                results[i] = encode(error_response(None, exc.code, str(exc)))
                continue
            t0 = time.monotonic()
            inline = self._inline_response(request, t0)
            if inline is not None:
                results[i] = encode(inline)
                continue
            method, params = request["method"], request["params"]
            if method in CACHEABLE_METHODS:
                blob = self.engine._params_blob(params)
                if blob is not None:
                    group = (method, blob)
                    encoded = batch_hits.get(group)
                    if encoded is not None:
                        counters.increment("service_batch_coalesced")
                        counters.increment("service_jobs_submitted")
                        results[i] = fast_ok_frame(
                            request["id"], encoded,
                            elapsed_s=time.monotonic() - t0,
                        )
                        continue
                    encoded = self.engine.cached_encoded(method, params)
                    if encoded is not None:
                        batch_hits[group] = encoded
                        results[i] = fast_ok_frame(
                            request["id"], encoded,
                            elapsed_s=time.monotonic() - t0,
                        )
                        continue
            results[i] = loop.create_task(self._slow_frame(request, t0))
        return [
            item if isinstance(item, bytes) else await item for item in results
        ]

    async def _slow_frame(self, request: dict, t0: float) -> bytes:
        """Admit one engine-bound frame off the loop and await its result."""
        loop = asyncio.get_running_loop()
        method, params = request["method"], request["params"]
        try:
            if method in BATCH_METHODS:
                # submit_batch blocks until the whole (possibly shrunk)
                # batch resolves; it occupies a dispatch thread, not the loop.
                future, info = await loop.run_in_executor(
                    self._dispatch, self.engine.submit_batch, method, params
                )
            else:
                future, info = await loop.run_in_executor(
                    self._dispatch, self.engine.submit, method, params
                )
        except RuntimeError:  # dispatch pool shut down mid-flight
            return encode(error_response(request["id"], "draining", _DRAINING_MESSAGE))
        payload = await self._bounded_await(future)
        return encode(self._payload_response(request["id"], payload, info, t0))

    async def _bounded_await(self, future) -> dict:
        """Async twin of :meth:`ServiceServerBase._bound_payload_wait`."""
        wrapped = asyncio.wrap_future(future)
        job_deadline = None
        if self.engine.job_timeout is not None:
            job_deadline = (
                time.monotonic() + self.engine.job_timeout + self._drain_timeout + 5.0
            )
        while True:
            done, _pending = await asyncio.wait({wrapped}, timeout=_WAIT_TICK_S)
            if done:
                try:
                    return wrapped.result()
                except Exception as exc:  # noqa: BLE001 — never tear the connection
                    return _error_payload("internal", f"{type(exc).__name__}: {exc}")
            now = time.monotonic()
            if self._drain_deadline is not None and now >= self._drain_deadline:
                return _error_payload(
                    "draining", "server shut down before this job finished"
                )
            if job_deadline is not None and now >= job_deadline:
                return _error_payload(
                    "timeout",
                    "job result was not produced within the job timeout "
                    "plus drain budget",
                )
