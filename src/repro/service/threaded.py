"""The classic thread-per-connection service front.

:class:`ThreadedServiceServer` is the original ``socketserver``-based
front: one OS thread per connection, each connection a strictly
sequential pipeline of frames.  It speaks the identical wire protocol
as the asyncio front (:class:`repro.service.server.ServiceServer`) and
produces byte-identical frames — the trace-replay suite asserts this —
but a thread per connection caps realistic concurrency at a few
hundred, which is why the async front is the default.  The threaded
front remains supported (``repro serve --front threaded``) as the
simple, easily-audited reference implementation and as the baseline
for the fleet load benchmark.

Two historical bugs are fixed relative to the original implementation
(both fixes live in :class:`~repro.service.server.ServiceServerBase`,
shared with the async front):

* **Drain admission race** — a frame that passed the server's drain
  check just as shutdown began could block in ``future.result()``
  forever after the engine stopped tracking it, tearing the connection
  instead of answering a structured ``draining`` error.
* **Unbounded result wait** — ``future.result()`` had no timeout, so a
  lost future pinned its connection thread permanently.  Waits are now
  bounded by the job timeout plus the drain deadline.
"""

from __future__ import annotations

import socketserver
import threading
import time

from pathlib import Path

from .protocol import (
    BATCH_METHODS,
    ProtocolError,
    decode_request,
    encode,
    error_response,
)
from .server import ServiceServerBase, _DRAINING_MESSAGE

__all__ = ["ThreadedServiceServer"]


class _Handler(socketserver.StreamRequestHandler):
    # Response frames are small; without this, Nagle + delayed ACK can
    # stall pipelined clients ~40ms per window (the asyncio front's
    # transport disables Nagle by default, so this also keeps the
    # front-vs-front benchmark about architecture, not socket options).
    disable_nagle_algorithm = True

    def handle(self) -> None:  # pragma: no cover - exercised via e2e tests
        service: ThreadedServiceServer = self.server.service  # type: ignore[attr-defined]
        service._connections += 1
        try:
            for raw in self.rfile:
                line = raw.strip()
                if not line:
                    continue
                response = service.handle_line(line)
                try:
                    self.wfile.write(encode(response))
                    self.wfile.flush()
                except (BrokenPipeError, ConnectionResetError, OSError):
                    break
        finally:
            service._connections -= 1


class _ThreadingTCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True
    address_family = socketserver.socket.AF_INET
    # The stdlib default accept backlog (5) is kept on purpose: this
    # front is the faithful baseline of the original deployment, and
    # refusing a connection storm at the accept queue is part of how
    # thread-per-connection behaved. The load benchmark measures it
    # as it shipped.


class _ThreadingTCP6Server(_ThreadingTCPServer):
    address_family = socketserver.socket.AF_INET6


if hasattr(socketserver, "ThreadingUnixStreamServer"):

    class _ThreadingUnixServer(socketserver.ThreadingUnixStreamServer):
        daemon_threads = True

else:  # pragma: no cover - non-POSIX platforms
    _ThreadingUnixServer = None


class ThreadedServiceServer(ServiceServerBase):
    """The thread-per-connection front (reference implementation)."""

    front = "threaded"

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._server = None
        self._thread = None
        self._connections = 0

    # -- lifecycle ---------------------------------------------------------------
    def start(self) -> None:
        """Bind the socket and serve in a background thread."""
        if self._address_spec[0] == "unix":
            if _ThreadingUnixServer is None:  # pragma: no cover
                raise ValueError("unix sockets are not supported on this platform")
            path = Path(self._address_spec[1])
            if path.exists():
                path.unlink()
            self._server = _ThreadingUnixServer(str(path), _Handler)
        else:
            _kind, host, port = self._address_spec
            server_cls = _ThreadingTCP6Server if ":" in host else _ThreadingTCPServer
            self._server = server_cls((host, port), _Handler)
        self._server.service = self  # type: ignore[attr-defined]
        self._started_at = time.monotonic()
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="service-accept",
            daemon=True,
        )
        self._thread.start()

    def stop(self) -> None:
        """Graceful shutdown: stop accepting, drain, release everything."""
        # Flag first: frames arriving from here on are answered with a
        # structured ``draining`` error instead of being admitted (and
        # any frame that slipped past the flag check races into the
        # engine's own drain gate, the second half of the fix).
        self._begin_drain()
        if self._server is not None:
            self._server.shutdown()
        self.engine.shutdown(self._drain_timeout)
        if self._server is not None:
            self._server.server_close()
            self._server = None
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None
        self._unlink_unix_socket()

    # -- introspection -----------------------------------------------------------
    def _bound_tcp_address(self):
        if self._server is None:
            return None
        host, port = self._server.server_address[:2]
        return host, port

    def connection_count(self) -> int:
        return self._connections

    # -- request dispatch --------------------------------------------------------
    def handle_line(self, line: bytes) -> dict:
        """Turn one request frame into one response frame (never raises)."""
        try:
            request = decode_request(line)
        except ProtocolError as exc:
            return error_response(None, exc.code, str(exc))
        t0 = time.monotonic()
        inline = self._inline_response(request, t0)
        if inline is not None:
            return inline
        method = request["method"]
        try:
            if method in BATCH_METHODS:
                # Batch frames degrade under load (shrink, don't reject).
                future, info = self.engine.submit_batch(method, request["params"])
            else:
                future, info = self.engine.submit(method, request["params"])
        except RuntimeError:  # engine torn down mid-admission
            return error_response(request["id"], "draining", _DRAINING_MESSAGE)
        payload = self._bound_payload_wait(future)
        return self._payload_response(request["id"], payload, info, t0)
