"""Tests for the IMPLY-logic baseline (compiler + machine simulator)."""

import pytest

from repro.baselines import ImplyOp, ImplyProgram, imply_map, magic_map
from repro.circuits import (
    alu_slice,
    c17,
    decoder,
    majority_voter,
    mux_tree,
    priority_encoder,
    random_netlist,
)
from tests.conftest import all_envs


class TestImplyOp:
    def test_bad_kind(self):
        with pytest.raises(ValueError):
            ImplyOp("nor", "q")

    def test_imply_requires_source(self):
        with pytest.raises(ValueError):
            ImplyOp("imply", "q")

    def test_str(self):
        assert str(ImplyOp("false", "w")) == "FALSE w"
        assert str(ImplyOp("imply", "w", source="a")) == "IMPLY a w"


class TestCompilation:
    @pytest.mark.parametrize(
        "factory",
        [c17, lambda: decoder(3), lambda: priority_encoder(5),
         lambda: mux_tree(2), lambda: majority_voter(3), lambda: alu_slice(2),
         lambda: random_netlist(6, 25, 4, seed=12)],
    )
    def test_program_computes_netlist(self, factory):
        nl = factory()
        prog = imply_map(nl)
        for env in all_envs(nl.inputs):
            assert prog.execute(env) == nl.evaluate(env), env

    def test_nand_is_three_ops(self):
        from repro.circuits import Netlist

        nl = Netlist("t", inputs=["a", "b"], outputs=["z"])
        nl.add_gate("z", "NAND", ["a", "b"])
        prog = imply_map(nl)
        assert prog.total_ops == 3
        assert prog.delay_steps == 3 + 2  # plus input loads

    def test_not_is_two_ops(self):
        from repro.circuits import Netlist

        nl = Netlist("t", inputs=["a"], outputs=["z"])
        nl.add_gate("z", "INV", ["a"])
        prog = imply_map(nl)
        assert prog.total_ops == 2

    def test_inputs_never_overwritten(self, c17_netlist):
        prog = imply_map(c17_netlist)
        for op in prog.ops:
            assert op.target not in prog.inputs, op

    def test_work_cells_counted(self, c17_netlist):
        prog = imply_map(c17_netlist)
        assert prog.work_cells >= len({op.target for op in prog.ops})


class TestParadigmOrdering:
    """The intro's narrative: IMPLY is the most serial of the three."""

    @pytest.mark.parametrize(
        "factory", [lambda: priority_encoder(6), lambda: decoder(4)]
    )
    def test_imply_slower_than_magic(self, factory):
        nl = factory()
        imply = imply_map(nl)
        magic = magic_map(nl, k=4)
        assert imply.delay_steps >= magic.delay_steps

    def test_imply_slower_than_compact(self):
        from repro import Compact

        nl = priority_encoder(6)
        imply = imply_map(nl)
        ours = Compact(gamma=0.5).synthesize_netlist(nl)
        assert ours.design.num_rows < imply.delay_steps
