"""Tests for the CONTRA-like MAGIC baseline."""

import pytest

from repro.baselines import cover_k_luts, decompose2, magic_map
from repro.circuits import (
    alu_slice,
    c17,
    decoder,
    majority_voter,
    mux_tree,
    priority_encoder,
    random_netlist,
)
from tests.conftest import all_envs


class TestDecompose2:
    @pytest.mark.parametrize(
        "factory",
        [c17, lambda: decoder(3), lambda: mux_tree(2), lambda: majority_voter(5),
         lambda: alu_slice(2), lambda: random_netlist(6, 25, 3, seed=4)],
    )
    def test_equivalent_with_fanin_2(self, factory):
        nl = factory()
        d = decompose2(nl)
        assert all(len(g.inputs) <= 2 for g in d.gates)
        for env in all_envs(nl.inputs):
            assert d.evaluate(env) == nl.evaluate(env)


class TestLutCovering:
    def test_luts_bounded_by_k(self, c17_netlist):
        for k in (2, 3, 4):
            for lut in cover_k_luts(c17_netlist, k):
                assert len(lut.inputs) <= k

    def test_outputs_are_lut_roots(self, c17_netlist):
        luts = cover_k_luts(c17_netlist, 4)
        outputs = {lut.output for lut in luts}
        assert set(c17_netlist.outputs) <= outputs

    def test_lut_leaves_are_inputs_or_roots(self, rca3):
        luts = cover_k_luts(rca3, 4)
        roots = {lut.output for lut in luts}
        legal = roots | set(rca3.inputs)
        for lut in luts:
            assert set(lut.inputs) <= legal

    def test_levels_topological(self, rca3):
        luts = cover_k_luts(rca3, 4)
        level = {name: 0 for name in rca3.inputs}
        for lut in sorted(luts, key=lambda l: l.level):
            assert all(inp in level for inp in lut.inputs), lut.output
            level[lut.output] = lut.level

    @pytest.mark.parametrize(
        "factory",
        [c17, lambda: decoder(3), lambda: priority_encoder(5),
         lambda: random_netlist(6, 30, 4, seed=6)],
    )
    @pytest.mark.parametrize("k", [3, 4])
    def test_lut_network_equivalent(self, factory, k):
        nl = factory()
        sched = magic_map(nl, k=k)
        for env in all_envs(nl.inputs):
            assert sched.evaluate(env, nl.outputs) == nl.evaluate(env), env

    def test_fewer_luts_with_larger_k(self, rca3):
        assert len(cover_k_luts(rca3, 6)) <= len(cover_k_luts(rca3, 2))


class TestCostModel:
    def test_ops_accounting_consistent(self, c17_netlist):
        sched = magic_map(c17_netlist)
        assert sched.total_ops == (
            sched.input_ops + sched.nor_ops + sched.not_ops + sched.copy_ops
        )
        assert sched.power_proxy == sched.total_ops

    def test_delay_at_least_inputs_plus_levels(self, rca3):
        sched = magic_map(rca3)
        assert sched.delay_steps >= sched.input_ops + len(sched.levels)

    def test_copy_overhead_scales_with_luts(self, dec3):
        base = magic_map(dec3, copy_per_lut=0)
        heavy = magic_map(dec3, copy_per_lut=4)
        assert heavy.total_ops == base.total_ops + 4 * len(base.luts)

    def test_magic_slower_than_compact_on_average(self):
        """Figure 13's direction: COMPACT delay beats MAGIC's sequential
        ops on average over control circuits (shallow decoders can go the
        other way; the suite average is what the paper reports)."""
        from repro import Compact
        from repro.circuits import i2c_control

        ratios = []
        for factory in (
            lambda: priority_encoder(8),
            lambda: i2c_control(5, 8, seed=11),
            lambda: decoder(4),
        ):
            nl = factory()
            sched = magic_map(nl, k=4)
            ours = Compact(gamma=0.5).synthesize_netlist(nl)
            ratios.append(ours.design.num_rows / sched.delay_steps)
        assert sum(ratios) / len(ratios) < 1.5
