"""Tests for the prior-work staircase baseline."""

import pytest

from repro import Compact
from repro.baselines import merged_robdd_graph, staircase_map_netlist, staircase_map_sbdd
from repro.bdd import build_sbdd
from repro.circuits import c17, decoder, priority_encoder, random_netlist
from repro.crossbar import validate_design
from tests.conftest import all_envs


class TestStaircaseCorrectness:
    @pytest.mark.parametrize(
        "factory",
        [c17, lambda: decoder(3), lambda: priority_encoder(5),
         lambda: random_netlist(6, 25, 4, seed=8)],
    )
    def test_functionally_correct(self, factory):
        nl = factory()
        res = staircase_map_netlist(nl)
        assert validate_design(res.design, nl.evaluate, nl.inputs).ok

    def test_sbdd_variant_correct(self, rca3):
        res = staircase_map_sbdd(build_sbdd(rca3))
        assert validate_design(res.design, rca3.evaluate, rca3.inputs).ok


class TestStaircaseShape:
    def test_all_vh_semiperimeter_is_2n(self, c17_netlist):
        res = staircase_map_netlist(c17_netlist)
        # Every node gets a wordline and a bitline.
        assert res.design.num_rows == res.bdd_nodes
        assert res.design.num_cols == res.bdd_nodes
        assert res.design.semiperimeter == 2 * res.bdd_nodes

    def test_robdd_merge_larger_than_sbdd(self, dec3):
        merged = merged_robdd_graph(dec3)
        sbdd = build_sbdd(dec3)
        assert merged.num_nodes >= sbdd.node_count() - 1

    def test_merged_graph_shares_terminal(self, dec3):
        merged = merged_robdd_graph(dec3)
        assert merged.terminal == ("T", 1)
        assert len(merged.roots) == len(dec3.outputs)

    def test_share_outputs_flag_shrinks_design(self, dec3):
        unshared = staircase_map_netlist(dec3, share_outputs=False)
        shared = staircase_map_netlist(dec3, share_outputs=True)
        assert shared.bdd_nodes <= unshared.bdd_nodes
        assert shared.design.semiperimeter <= unshared.design.semiperimeter


class TestCompactBeatsBaseline:
    """The paper's Table IV claims, at our scale."""

    @pytest.mark.parametrize(
        "factory", [c17, lambda: decoder(4), lambda: priority_encoder(6)]
    )
    def test_compact_strictly_smaller(self, factory):
        nl = factory()
        base = staircase_map_netlist(nl)
        ours = Compact(gamma=0.5).synthesize_netlist(nl)
        assert ours.design.semiperimeter < base.design.semiperimeter
        assert ours.design.max_dimension < base.design.max_dimension
        assert ours.design.area < base.design.area
        assert ours.design.num_rows <= base.design.num_rows

    def test_delay_improves(self, dec3):
        base = staircase_map_netlist(dec3)
        ours = Compact(gamma=0.5).synthesize_netlist(dec3)
        assert ours.design.delay_steps < base.design.delay_steps
