"""Packed truth-table kernels: bitset helpers and the BDD full-space sweep."""

import itertools

import numpy as np
import pytest

from repro import bitset
from repro.bdd import BDD, build_sbdd
from repro.circuits import comparator, random_netlist
from repro.expr import parse
from tests.conftest import all_envs

NAMES = ["a", "b", "c", "d"]

EXPRS = [
    "(a & b) | (c & d)",
    "a ^ b ^ c ^ d",
    "~a | (b & c & d)",
    "(a | b) & (c | ~d)",
    "0",
    "1",
    "a",
]

WIDE = "(a & b) | (c ^ d) | (e & ~f & g)"
WIDE_NAMES = ["a", "b", "c", "d", "e", "f", "g"]


class TestBitsetHelpers:
    def test_num_words(self):
        assert bitset.num_words(0) == 1
        assert bitset.num_words(5) == 1
        assert bitset.num_words(6) == 1
        assert bitset.num_words(7) == 2
        assert bitset.num_words(10) == 16

    def test_width_bounds(self):
        with pytest.raises(ValueError, match="0..26"):
            bitset.num_words(27)
        with pytest.raises(ValueError, match="0..26"):
            bitset.zeros(-1)

    def test_ones_keeps_tail_zero(self):
        for n in range(6):
            table = bitset.ones(n)
            assert bitset.popcount(table) == 1 << n
            assert int(table[0]) == bitset.tail_mask(n)

    @pytest.mark.parametrize("n", [1, 3, 5, 6, 8])
    def test_variable_mask_matches_bit_convention(self, n):
        names = [f"x{j}" for j in range(n)]
        for j in range(n):
            mask = bitset.variable_mask(n - 1 - j, n)
            for k in range(1 << n):
                env = bitset.index_env(k, names)
                assert bitset.get_bit(mask, k) == env[names[j]], (j, k)

    def test_index_env_is_product_order(self):
        names = ["a", "b", "c"]
        for k, bits in enumerate(itertools.product([False, True], repeat=3)):
            assert bitset.index_env(k, names) == dict(zip(names, bits))

    def test_bit_not_and_first_set(self):
        n = 3
        table = bitset.zeros(n)
        assert bitset.first_set(table) is None
        inverted = bitset.bit_not(table, n)
        assert bitset.popcount(inverted) == 8  # tail stayed zero
        assert bitset.first_set(inverted) == 0

    def test_pack_unpack_round_trip(self):
        rng = np.random.default_rng(3)
        bits = rng.random(200) < 0.5
        packed = bitset.pack_bools(bits)
        assert bitset.unpack_bools(packed, 200).tolist() == bits.tolist()
        for i in range(200):
            assert bitset.get_bit(packed, i) == bits[i]


class TestSatisfyingBitset:
    @pytest.mark.parametrize("text", EXPRS)
    def test_matches_per_assignment_evaluation(self, text):
        m = BDD(NAMES)
        f = m.from_expr(parse(text))
        table = m.satisfying_bitset(f, NAMES)
        for k, env in enumerate(all_envs(NAMES)):
            assert bitset.get_bit(table, k) == m.evaluate(f, env), (text, k)

    @pytest.mark.parametrize("text", EXPRS)
    def test_popcount_matches_sat_count(self, text):
        m = BDD(NAMES)
        f = m.from_expr(parse(text))
        assert bitset.popcount(m.satisfying_bitset(f, NAMES)) == m.sat_count(f)

    def test_multi_word_sweep(self):
        m = BDD(WIDE_NAMES)
        f = m.from_expr(parse(WIDE))
        table = m.satisfying_bitset(f, WIDE_NAMES)
        assert table.shape == (2,)
        for k, env in enumerate(all_envs(WIDE_NAMES)):
            assert bitset.get_bit(table, k) == m.evaluate(f, env)

    def test_input_order_controls_bit_positions(self):
        m = BDD(["a", "b"])
        f = m.from_expr(parse("a & ~b"))
        forward = m.satisfying_bitset(f, ["a", "b"])
        swapped = m.satisfying_bitset(f, ["b", "a"])
        # a=1, b=0 is index 2 under [a, b] and index 1 under [b, a].
        assert bitset.first_set(forward) == 2
        assert bitset.first_set(swapped) == 1

    def test_unnamed_support_variable_rejected(self):
        m = BDD(NAMES)
        f = m.from_expr(parse("a & d"))
        with pytest.raises(ValueError, match="'d'.*not among"):
            m.satisfying_bitset(f, ["a", "b"])

    def test_extra_inputs_pad_the_space(self):
        m = BDD(["a"])
        f = m.var("a")
        table = m.satisfying_bitset(f, ["a", "pad"])
        assert bitset.popcount(table) == 2  # a=1 with pad free


class TestSbddSweeps:
    @pytest.mark.parametrize("seed", range(3))
    def test_evaluate_bitset_matches_scalar(self, seed):
        nl = random_netlist(6, 25, 3, seed=seed)
        sbdd = build_sbdd(nl)
        tables = sbdd.evaluate_bitset(nl.inputs)
        for k, env in enumerate(all_envs(nl.inputs)):
            expected = sbdd.evaluate(env)
            for out in nl.outputs:
                assert bitset.get_bit(tables[out], k) == expected[out]

    def test_evaluate_batch_matches_scalar(self):
        nl = comparator(3)
        sbdd = build_sbdd(nl)
        matrix = np.array(
            list(itertools.product([False, True], repeat=len(nl.inputs))),
            dtype=bool,
        )
        batch = sbdd.evaluate_batch(matrix, nl.inputs)
        for k, env in enumerate(all_envs(nl.inputs)):
            expected = sbdd.evaluate(env)
            assert {out: bool(v[k]) for out, v in batch.items()} == expected

    def test_sweeps_survive_garbage_collection(self):
        nl = comparator(3)
        sbdd = build_sbdd(nl)
        before = sbdd.evaluate_bitset(nl.inputs)
        remap = sbdd.manager.collect_garbage(list(sbdd.roots.values()))
        sbdd.roots = {out: remap[r] for out, r in sbdd.roots.items()}
        after = sbdd.evaluate_bitset(nl.inputs)
        for out in nl.outputs:
            assert np.array_equal(before[out], after[out])
