"""Tests for the free-BDD (FBDD) substrate."""

import pytest

from repro.bdd import build_sbdd, sbdd_from_exprs
from repro.bdd.fbdd import build_fbdd, fbdd_to_bdd_graph
from repro.circuits import c17, mux_tree, priority_encoder, random_netlist
from repro.core import Compact
from repro.crossbar import validate_design
from repro.expr import parse
from tests.conftest import all_envs


class TestConstruction:
    @pytest.mark.parametrize(
        "factory",
        [c17, lambda: priority_encoder(5), lambda: mux_tree(2),
         lambda: random_netlist(6, 25, 3, seed=31)],
    )
    def test_evaluates_like_netlist(self, factory):
        nl = factory()
        fbdd = build_fbdd(build_sbdd(nl))
        fbdd.check_free()
        for env in all_envs(nl.inputs):
            assert fbdd.evaluate(env) == nl.evaluate(env), env

    def test_never_larger_than_robdd_for_greedy_choices(self):
        """Greedy FBDD matches or beats the ROBDD on these circuits."""
        for factory in (c17, lambda: mux_tree(3), lambda: priority_encoder(6)):
            nl = factory()
            sbdd = build_sbdd(nl)
            fbdd = build_fbdd(sbdd)
            assert fbdd.node_count() <= sbdd.node_count() + 2

    def test_beats_fixed_order_on_order_sensitive_function(self):
        """The indirect-addressing trick: f reads a data bit selected by
        address bits; a free order can test the address first on every
        path, while one global order over interleaved copies pays more."""
        # f = (s ? (a & b) : (c ^ d)) with a bad fixed order forced.
        e = parse("(s & (a & b)) | (~s & (c ^ d))")
        sbdd = sbdd_from_exprs({"f": e}, order=["a", "c", "b", "d", "s"])
        fbdd = build_fbdd(sbdd)
        assert fbdd.node_count() <= sbdd.node_count()
        for env in all_envs(["a", "b", "c", "d", "s"]):
            assert fbdd.evaluate(env)["f"] == e.evaluate(env)

    def test_constant_outputs(self):
        sbdd = sbdd_from_exprs({"t": parse("1"), "z": parse("0"), "f": parse("a")})
        fbdd = build_fbdd(sbdd)
        assert fbdd.evaluate({"a": False}) == {"t": True, "z": False, "f": False}

    def test_shared_subfunctions_share_nodes(self):
        sbdd = sbdd_from_exprs({"f": parse("a & b & c"), "g": parse("b & c")})
        fbdd = build_fbdd(sbdd)
        # g's function is a subfunction of f: total nodes < separate sum.
        assert fbdd.internal_count() <= 3

    def test_candidate_limit(self):
        nl = priority_encoder(6)
        full = build_fbdd(build_sbdd(nl), candidate_limit=None)
        limited = build_fbdd(build_sbdd(nl), candidate_limit=2)
        for env in list(all_envs(nl.inputs))[::7]:
            assert full.evaluate(env) == limited.evaluate(env)


class TestFbddMapping:
    @pytest.mark.parametrize(
        "factory", [c17, lambda: mux_tree(2), lambda: random_netlist(5, 20, 3, seed=8)]
    )
    def test_compact_on_fbdd_graph_is_valid(self, factory):
        """The full COMPACT pipeline works on FBDD graphs too."""
        nl = factory()
        fbdd = build_fbdd(build_sbdd(nl))
        bdd_graph = fbdd_to_bdd_graph(fbdd)
        design, labeling, _times = Compact(gamma=0.5).synthesize_bdd_graph(
            bdd_graph, name=f"{nl.name}:fbdd"
        )
        assert labeling.is_valid(bdd_graph)
        assert validate_design(design, nl.evaluate, nl.inputs).ok

    def test_graph_drops_zero_terminal(self, c17_netlist):
        fbdd = build_fbdd(build_sbdd(c17_netlist))
        bg = fbdd_to_bdd_graph(fbdd)
        assert 0 not in bg.graph
        assert bg.terminal == 1
        assert bg.num_nodes == fbdd.node_count() - 1

    def test_all_constant_graph(self):
        sbdd = sbdd_from_exprs({"t": parse("1")})
        fbdd = build_fbdd(sbdd)
        bg = fbdd_to_bdd_graph(fbdd)
        assert bg.num_nodes == 0 and bg.constant_outputs == {"t": True}
