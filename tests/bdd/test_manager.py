"""Unit tests for the ROBDD manager."""

import pytest

from repro.bdd import BDD, FALSE_ID, TRUE_ID
from repro.expr import parse


@pytest.fixture
def m():
    return BDD(["a", "b", "c"])


class TestStructure:
    def test_terminals(self, m):
        assert m.false == FALSE_ID
        assert m.true == TRUE_ID
        assert m.is_terminal(FALSE_ID) and m.is_terminal(TRUE_ID)

    def test_var_nodes_hash_consed(self, m):
        assert m.var("a") == m.var("a")
        assert m.var("a") != m.var("b")

    def test_var_on_demand_declaration(self):
        m = BDD()
        m.var("x")
        assert m.var_order == ("x",)

    def test_duplicate_var_rejected(self, m):
        with pytest.raises(ValueError):
            m.add_var("a")

    def test_reduction_no_redundant_tests(self, m):
        # ite(a, b, b) must not create an 'a' node.
        b = m.var("b")
        assert m.ite(m.var("a"), b, b) == b

    def test_levels(self, m):
        assert m.level_of("a") == 0
        assert m.var_at_level(2) == "c"
        assert m.var_of(m.var("b")) == "b"
        with pytest.raises(ValueError):
            m.var_of(TRUE_ID)

    def test_children(self, m):
        a = m.var("a")
        assert m.low(a) == FALSE_ID
        assert m.high(a) == TRUE_ID
        na = m.nvar("a")
        assert m.low(na) == TRUE_ID
        assert m.high(na) == FALSE_ID


class TestOperations:
    def test_and_terminal_rules(self, m):
        a = m.var("a")
        assert m.apply_and(a, TRUE_ID) == a
        assert m.apply_and(a, FALSE_ID) == FALSE_ID
        assert m.apply_and(a, a) == a

    def test_or_terminal_rules(self, m):
        a = m.var("a")
        assert m.apply_or(a, FALSE_ID) == a
        assert m.apply_or(a, TRUE_ID) == TRUE_ID

    def test_xor_self_cancels(self, m):
        f = m.apply_and(m.var("a"), m.var("b"))
        assert m.apply_xor(f, f) == FALSE_ID

    def test_not_involution(self, m):
        f = m.apply_or(m.var("a"), m.apply_and(m.var("b"), m.var("c")))
        assert m.not_(m.not_(f)) == f
        assert m.not_(TRUE_ID) == FALSE_ID

    def test_ite_canonical(self, m):
        a, b, c = m.var("a"), m.var("b"), m.var("c")
        f = m.ite(a, b, c)
        g = m.apply_or(m.apply_and(a, b), m.apply_and(m.not_(a), c))
        assert f == g

    def test_named_apply(self, m):
        a, b = m.var("a"), m.var("b")
        assert m.apply("nand", a, b) == m.not_(m.apply_and(a, b))
        assert m.apply("nor", a, b) == m.not_(m.apply_or(a, b))
        assert m.apply("xnor", a, b) == m.not_(m.apply_xor(a, b))
        assert m.apply("imp", a, b) == m.apply_or(m.not_(a), b)
        with pytest.raises(ValueError):
            m.apply("zap", a, b)

    def test_canonicity_same_function_same_node(self, m):
        # Build (a&b)|c two structurally different ways.
        f1 = m.apply_or(m.apply_and(m.var("a"), m.var("b")), m.var("c"))
        f2 = m.not_(m.apply_and(
            m.not_(m.apply_and(m.var("a"), m.var("b"))), m.not_(m.var("c"))
        ))
        assert f1 == f2


class TestQuantifiersAndCofactors:
    def test_restrict(self, m):
        f = m.apply_or(m.apply_and(m.var("a"), m.var("b")), m.var("c"))
        assert m.restrict(f, "a", True) == m.apply_or(m.var("b"), m.var("c"))
        assert m.restrict(f, "a", False) == m.var("c")

    def test_exists(self, m):
        f = m.apply_and(m.var("a"), m.var("b"))
        assert m.exists(["a"], f) == m.var("b")
        assert m.exists(["a", "b"], f) == TRUE_ID
        assert m.exists([], f) == f

    def test_forall(self, m):
        f = m.apply_or(m.var("a"), m.var("b"))
        assert m.forall(["a"], f) == m.var("b")
        assert m.forall(["a", "b"], f) == FALSE_ID

    def test_compose(self, m):
        f = m.apply_or(m.apply_and(m.var("a"), m.var("b")), m.var("c"))
        g = m.compose(f, "c", m.apply_and(m.var("a"), m.var("b")))
        assert g == m.apply_and(m.var("a"), m.var("b"))


class TestCountingAndInspection:
    def test_sat_count(self, m):
        f = m.apply_or(m.apply_and(m.var("a"), m.var("b")), m.var("c"))
        assert m.sat_count(f) == 5
        assert m.sat_count(TRUE_ID) == 8
        assert m.sat_count(FALSE_ID) == 0
        assert m.sat_count(m.var("c")) == 4

    def test_sat_count_custom_width(self, m):
        assert m.sat_count(m.var("a"), nvars=5) == 16

    def test_pick_sat(self, m):
        f = m.apply_and(m.var("a"), m.not_(m.var("c")))
        env = m.pick_sat(f)
        assert env["a"] is True and env["c"] is False
        assert m.pick_sat(FALSE_ID) is None

    def test_one_paths(self, m):
        f = m.apply_or(m.var("a"), m.var("b"))
        # Paths to 1: a=1, or a=0,b=1.
        assert m.one_paths(f) == 2
        assert m.one_paths(TRUE_ID) == 1
        assert m.one_paths(FALSE_ID) == 0

    def test_support(self, m):
        f = m.apply_and(m.var("a"), m.var("c"))
        assert m.support(f) == frozenset({"a", "c"})

    def test_node_count_shares(self, m):
        f = m.apply_and(m.var("a"), m.var("b"))
        g = m.apply_or(f, m.var("c"))
        both = m.node_count([f, g])
        # Shared cones are counted once.
        assert both <= m.node_count([f]) + m.node_count([g])
        assert both >= m.node_count([g])

    def test_evaluate(self, m):
        f = m.from_expr(parse("(a & b) | ~c"))
        assert m.evaluate(f, {"a": 1, "b": 1, "c": 1})
        assert not m.evaluate(f, {"a": 0, "b": 1, "c": 1})

    def test_edges_polarity(self, m):
        a = m.var("a")
        edges = m.edges([a])
        assert (a, FALSE_ID, "a", False) in edges
        assert (a, TRUE_ID, "a", True) in edges

    def test_clear_cache_keeps_semantics(self, m):
        f = m.from_expr(parse("a ^ b ^ c"))
        m.clear_cache()
        assert m.evaluate(f, {"a": 1, "b": 0, "c": 0})


class TestFromExpr:
    @pytest.mark.parametrize(
        "text",
        ["a & b | c", "a ^ b ^ c", "~(a | b) & c", "(a | b) & (a | c) & (b | c)", "1", "0", "a & ~a"],
    )
    def test_matches_expression_semantics(self, text):
        from tests.conftest import all_envs

        m = BDD(["a", "b", "c"])
        e = parse(text)
        f = m.from_expr(e)
        for env in all_envs(["a", "b", "c"]):
            assert m.evaluate(f, env) == e.evaluate(env)


class TestUndeclaredVariables:
    def test_restrict_unknown_var(self, m):
        f = m.from_expr(parse("a & b"))
        with pytest.raises(ValueError, match="unknown variable 'z'"):
            m.restrict(f, "z", True)

    def test_compose_unknown_var(self, m):
        f = m.from_expr(parse("a | c"))
        with pytest.raises(ValueError, match="unknown variable 'q'"):
            m.compose(f, "q", m.var("b"))

    def test_exists_unknown_var(self, m):
        f = m.from_expr(parse("a ^ b"))
        with pytest.raises(ValueError, match="unknown variable"):
            m.exists(["a", "nope"], f)

    def test_error_lists_declared_variables(self, m):
        with pytest.raises(ValueError, match=r"declared:.*a.*b.*c"):
            m.restrict(m.var("a"), "missing", False)


class TestCacheInstrumentation:
    def test_hits_and_misses_counted(self, m):
        a, b = m.var("a"), m.var("b")
        m.reset_cache_stats()
        m.clear_cache()
        m.apply_and(a, b)
        first = m.cache_stats()
        assert first["misses"] >= 1
        m.apply_and(a, b)
        second = m.cache_stats()
        assert second["hits"] == first["hits"] + 1
        assert second["misses"] == first["misses"]
        assert 0.0 <= second["hit_rate"] <= 1.0

    def test_operand_order_shares_cache(self, m):
        a, b = m.var("a"), m.var("b")
        m.clear_cache()
        m.reset_cache_stats()
        m.apply_and(a, b)
        before = m.cache_stats()["hits"]
        m.apply_and(b, a)  # canonicalised key: same entry
        assert m.cache_stats()["hits"] == before + 1

    def test_bounded_cache_resets(self):
        m = BDD([f"x{i}" for i in range(12)], max_cache_size=8)
        f = m.false
        for i in range(12):
            f = m.apply_or(f, m.var(f"x{i}"))
        stats = m.cache_stats()
        assert stats["resets"] >= 1
        assert stats["entries"] <= 8
        # Semantics survive the resets.
        assert m.evaluate(f, {f"x{i}": i == 7 for i in range(12)})

    def test_max_cache_size_validated(self):
        with pytest.raises(ValueError):
            BDD(max_cache_size=0)

    def test_reset_cache_stats(self, m):
        m.apply_and(m.var("a"), m.var("b"))
        m.reset_cache_stats()
        stats = m.cache_stats()
        assert stats["hits"] == 0 and stats["misses"] == 0 and stats["resets"] == 0


class TestDeepCircuits:
    """The apply kernels are iterative: depth ~ #variables must not
    hit Python's recursion limit."""

    N = 3000

    def _chain(self, m):
        f = m.true
        for i in reversed(range(self.N)):
            f = m.apply_and(m.var(f"x{i}"), f)
        return f

    def test_deep_and_chain(self):
        import sys

        m = BDD([f"x{i}" for i in range(self.N)])
        limit = sys.getrecursionlimit()
        try:
            sys.setrecursionlimit(300)
            f = self._chain(m)
            nf = m.not_(f)
            assert m.apply_or(f, nf) == TRUE_ID
            assert m.apply_and(f, nf) == FALSE_ID
            assert m.apply_xor(f, nf) == TRUE_ID
        finally:
            sys.setrecursionlimit(limit)
        assert m.evaluate(f, {f"x{i}": True for i in range(self.N)})

    def test_deep_reachable(self):
        import sys

        m = BDD([f"x{i}" for i in range(self.N)])
        f = self._chain(m)
        limit = sys.getrecursionlimit()
        try:
            sys.setrecursionlimit(300)
            assert len(m.reachable([f])) == self.N + 2
        finally:
            sys.setrecursionlimit(limit)


class TestGarbageCollection:
    def test_collect_preserves_functions(self, m):
        f = m.from_expr(parse("(a & b) | ~c"))
        g = m.from_expr(parse("a ^ c"))
        m.apply_and(f, g)  # make some garbage-able intermediates
        dead = m.apply_xor(m.var("a"), m.var("b"))
        assert not m.is_terminal(dead)
        remap = m.collect_garbage([f, g])
        f2, g2 = remap[f], remap[g]
        from tests.conftest import all_envs

        for env in all_envs(["a", "b", "c"]):
            assert m.evaluate(f2, env) == ((env["a"] and env["b"]) or not env["c"])
            assert m.evaluate(g2, env) == (env["a"] != env["c"])

    def test_collect_shrinks_table(self, m):
        f = m.from_expr(parse("(a & b) | c"))
        dead = m.apply_xor(m.var("a"), m.apply_or(m.var("b"), m.var("c")))
        assert not m.is_terminal(dead)
        before = m.table_size()
        remap = m.collect_garbage([f])
        assert m.table_size() < before
        # After collection the table holds exactly the live set.
        assert m.table_size() == len(m.reachable([remap[f]]))

    def test_terminals_survive_collection(self, m):
        remap = m.collect_garbage([])
        assert remap[FALSE_ID] == FALSE_ID
        assert remap[TRUE_ID] == TRUE_ID
        assert m.table_size() == 2
