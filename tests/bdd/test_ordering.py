"""Tests for variable ordering heuristics."""

from repro.bdd import (
    build_sbdd,
    interleaved_order,
    sbdd_size_for_order,
    sift_order,
    static_order,
)
from repro.circuits import comparator, decoder, random_netlist, ripple_carry_adder


class TestStaticOrder:
    def test_covers_all_inputs(self):
        nl = ripple_carry_adder(4)
        order = static_order(nl)
        assert sorted(order) == sorted(nl.inputs)

    def test_unreached_inputs_go_last(self):
        from repro.circuits import Netlist

        nl = Netlist("t", inputs=["a", "dead"], outputs=["z"])
        nl.add_gate("z", "BUF", ["a"])
        assert static_order(nl) == ["a", "dead"]

    def test_deterministic(self):
        nl = random_netlist(8, 30, 4, seed=0)
        assert static_order(nl) == static_order(nl)


class TestInterleavedOrder:
    def test_interleaves_buses(self):
        nl = comparator(3)
        order = interleaved_order(nl)
        assert order[:2] == ["a0", "b0"]
        assert set(order) == set(nl.inputs)

    def test_beats_natural_order_on_adder(self):
        nl = ripple_carry_adder(6)
        natural = sbdd_size_for_order(nl, list(nl.inputs))
        interleaved = sbdd_size_for_order(nl, interleaved_order(nl))
        assert interleaved < natural

    def test_non_bus_inputs_preserved(self):
        from repro.circuits import Netlist

        nl = Netlist("t", inputs=["a0", "a1", "clk_en"], outputs=["z"])
        nl.add_gate("z", "AND", ["a0", "clk_en"])
        order = interleaved_order(nl)
        assert "clk_en" in order and set(order) == set(nl.inputs)


class TestSiftOrder:
    def test_never_worse_than_start(self):
        nl = random_netlist(7, 25, 3, seed=17)
        start = static_order(nl)
        sifted = sift_order(nl, start=start, max_rounds=1)
        assert sbdd_size_for_order(nl, sifted) <= sbdd_size_for_order(nl, start)

    def test_is_a_permutation(self):
        nl = decoder(3)
        sifted = sift_order(nl, max_rounds=1)
        assert sorted(sifted) == sorted(nl.inputs)

    def test_respects_time_budget(self):
        import time

        nl = random_netlist(10, 60, 4, seed=23)
        t0 = time.monotonic()
        sift_order(nl, max_rounds=5, time_budget=0.2)
        assert time.monotonic() - t0 < 5.0

    def test_semantics_preserved(self):
        from tests.conftest import all_envs

        nl = random_netlist(6, 20, 3, seed=29)
        sifted = sift_order(nl, max_rounds=1)
        ref = build_sbdd(nl)
        new = build_sbdd(nl, order=sifted)
        for env in all_envs(nl.inputs):
            assert ref.evaluate(env) == new.evaluate(env)
