"""Property-based tests: the BDD engine against expression semantics."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.bdd import BDD, FALSE_ID, TRUE_ID
from repro.expr import And, Ite, Not, Or, Var, Xor

NAMES = ["a", "b", "c", "d", "e"]


@st.composite
def exprs(draw, depth=3):
    if depth == 0 or draw(st.booleans()):
        return Var(draw(st.sampled_from(NAMES)))
    kind = draw(st.sampled_from(["not", "and", "or", "xor", "ite"]))
    if kind == "not":
        return Not(draw(exprs(depth=depth - 1)))
    if kind == "ite":
        return Ite(*(draw(exprs(depth=depth - 1)) for _ in range(3)))
    ctor = {"and": And, "or": Or, "xor": Xor}[kind]
    return ctor(*(draw(exprs(depth=depth - 1)) for _ in range(draw(st.integers(2, 3)))))


envs = st.fixed_dictionaries({n: st.booleans() for n in NAMES})


@settings(max_examples=150, deadline=None)
@given(exprs(), envs)
def test_bdd_matches_expression(e, env):
    m = BDD(NAMES)
    f = m.from_expr(e)
    assert m.evaluate(f, env) == e.evaluate(env)


@settings(max_examples=80, deadline=None)
@given(exprs(), exprs())
def test_canonicity(e1, e2):
    """Equivalent expressions compile to the same node (canonicity)."""
    m = BDD(NAMES)
    f1, f2 = m.from_expr(e1), m.from_expr(e2)
    if e1.equivalent(e2):
        assert f1 == f2
    else:
        assert f1 != f2


@settings(max_examples=80, deadline=None)
@given(exprs())
def test_sat_count_matches_truth_table(e):
    m = BDD(NAMES)
    f = m.from_expr(e)
    expected = sum(e.truth_table(NAMES))
    assert m.sat_count(f, nvars=len(NAMES)) == expected


@settings(max_examples=60, deadline=None)
@given(exprs(), envs)
def test_negation_through_bdd(e, env):
    m = BDD(NAMES)
    assert m.evaluate(m.not_(m.from_expr(e)), env) == (not e.evaluate(env))


@settings(max_examples=60, deadline=None)
@given(exprs(), st.sampled_from(NAMES), st.booleans(), envs)
def test_restrict_matches_cofactor(e, name, value, env):
    m = BDD(NAMES)
    restricted = m.restrict(m.from_expr(e), name, value)
    assert m.evaluate(restricted, env) == e.cofactor(name, value).evaluate(env)


@settings(max_examples=60, deadline=None)
@given(exprs(), st.sampled_from(NAMES))
def test_exists_or_of_cofactors(e, name):
    m = BDD(NAMES)
    f = m.from_expr(e)
    lhs = m.exists([name], f)
    rhs = m.apply_or(m.restrict(f, name, True), m.restrict(f, name, False))
    assert lhs == rhs


@settings(max_examples=60, deadline=None)
@given(exprs())
def test_pick_sat_is_satisfying(e):
    m = BDD(NAMES)
    f = m.from_expr(e)
    env = m.pick_sat(f)
    if f == FALSE_ID:
        assert env is None
    else:
        full = {n: False for n in NAMES} | env
        assert m.evaluate(f, full)


@settings(max_examples=40, deadline=None)
@given(exprs())
def test_one_paths_counts_distinct_true_paths(e):
    """Path count is bounded by sat count and positive iff satisfiable."""
    m = BDD(NAMES)
    f = m.from_expr(e)
    paths = m.one_paths(f)
    sats = m.sat_count(f, nvars=len(NAMES))
    assert (paths == 0) == (sats == 0)
    assert paths <= max(sats, 1)
