"""Tests for in-place dynamic variable reordering (swap + sifting)."""

import itertools

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.bdd import BDD, build_sbdd, sift, sift_sbdd, swap_adjacent
from repro.bdd.reorder import move_var
from repro.circuits import comparator, random_netlist, ripple_carry_adder
from repro.expr import parse
from tests.conftest import all_envs

NAMES = ["a", "b", "c", "d"]


def check_unique_table_consistent(m: BDD) -> None:
    """No two live entries may share a (level, low, high) triple."""
    seen = {}
    for key, node in m.unique_entries():
        level, lo, hi = key
        assert m._var_level[node] == level, (key, node)
        assert m._low[node] == lo and m._high[node] == hi
        assert key not in seen or seen[key] == node
        seen[key] = node


class TestSwapAdjacent:
    def test_function_preserved(self):
        m = BDD(NAMES)
        f = m.from_expr(parse("(a & b) | (c & d)"))
        before = {tuple(env.items()): m.evaluate(f, env) for env in all_envs(NAMES)}
        swap_adjacent(m, 1)
        assert m.var_order == ("a", "c", "b", "d")
        for env in all_envs(NAMES):
            assert m.evaluate(f, env) == before[tuple(env.items())]
        check_unique_table_consistent(m)

    def test_double_swap_is_identity_on_order(self):
        m = BDD(NAMES)
        f = m.from_expr(parse("a ^ b ^ c"))
        swap_adjacent(m, 0)
        swap_adjacent(m, 0)
        assert m.var_order == tuple(NAMES)
        assert m.evaluate(f, {"a": 1, "b": 0, "c": 0, "d": 0})

    def test_out_of_range_rejected(self):
        m = BDD(NAMES)
        with pytest.raises(IndexError):
            swap_adjacent(m, 3)
        with pytest.raises(IndexError):
            swap_adjacent(m, -1)

    def test_root_ids_stay_valid(self):
        m = BDD(NAMES)
        f = m.from_expr(parse("(a & c) | (b & d)"))
        g = m.from_expr(parse("a | d"))
        swap_adjacent(m, 1)
        swap_adjacent(m, 2)
        assert m.evaluate(f, {"a": 1, "b": 0, "c": 1, "d": 0})
        assert m.evaluate(g, {"a": 0, "b": 0, "c": 0, "d": 1})

    def test_canonicity_after_swap(self):
        """Rebuilding the same function after a swap must reuse the node."""
        m = BDD(NAMES)
        f = m.from_expr(parse("(a & b) | (c & d)"))
        swap_adjacent(m, 0)
        f2 = m.from_expr(parse("(a & b) | (c & d)"))
        assert f == f2
        check_unique_table_consistent(m)

    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(0, 2),
        st.sampled_from([
            "(a & b) | (c & d)", "a ^ b ^ c ^ d", "(a | b) & (c | d)",
            "a & (b | (c & ~d))", "~a | (b & c & d)", "(a ^ c) & (b ^ d)",
        ]),
    )
    def test_swap_property(self, level, text):
        m = BDD(NAMES)
        f = m.from_expr(parse(text))
        expected = parse(text)
        swap_adjacent(m, level)
        for env in all_envs(NAMES):
            assert m.evaluate(f, env) == expected.evaluate(env)
        check_unique_table_consistent(m)

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(0, 2), min_size=1, max_size=8))
    def test_swap_sequences(self, levels):
        m = BDD(NAMES)
        f = m.from_expr(parse("(a & b) | (b & c) | (c & d) | (a ^ d)"))
        expected = parse("(a & b) | (b & c) | (c & d) | (a ^ d)")
        for lvl in levels:
            swap_adjacent(m, lvl)
        for env in all_envs(NAMES):
            assert m.evaluate(f, env) == expected.evaluate(env)
        check_unique_table_consistent(m)


class TestMoveVar:
    def test_move_to_bottom_and_back(self):
        m = BDD(NAMES)
        f = m.from_expr(parse("(a & b) | (c & d)"))
        move_var(m, "a", 3, [f])
        assert m.var_order[3] == "a"
        move_var(m, "a", 0, [f])
        assert m.var_order[0] == "a"
        for env in all_envs(NAMES):
            assert m.evaluate(f, env) == parse("(a & b) | (c & d)").evaluate(env)


class TestSift:
    def test_sift_reduces_bad_order_adder(self):
        nl = ripple_carry_adder(5)
        # Natural (worst-case) order: all a's then all b's.
        sbdd = build_sbdd(nl, order=list(nl.inputs))
        before = sbdd.node_count()
        after = sift_sbdd(sbdd, max_rounds=2)
        assert after < before / 2  # interleaving-like order found
        # Function preserved on a sample.
        for env in list(all_envs(nl.inputs))[:: 97]:
            assert sbdd.evaluate(env) == nl.evaluate(env)

    def test_sift_never_increases(self):
        nl = comparator(4)
        sbdd = build_sbdd(nl)
        before = sbdd.node_count()
        after = sift_sbdd(sbdd)
        assert after <= before

    def test_sift_respects_time_budget(self):
        import time

        nl = random_netlist(10, 40, 4, seed=3)
        sbdd = build_sbdd(nl, order=list(nl.inputs))
        t0 = time.monotonic()
        sift_sbdd(sbdd, time_budget=0.5)
        assert time.monotonic() - t0 < 10.0

    @pytest.mark.parametrize("seed", range(3))
    def test_sift_preserves_semantics_random(self, seed):
        nl = random_netlist(6, 25, 3, seed=seed)
        sbdd = build_sbdd(nl)
        sift_sbdd(sbdd, max_rounds=1)
        for env in all_envs(nl.inputs):
            assert sbdd.evaluate(env) == nl.evaluate(env)

    def test_live_size_reported(self):
        nl = comparator(3)
        sbdd = build_sbdd(nl)
        size = sift_sbdd(sbdd)
        assert size == sbdd.node_count()
