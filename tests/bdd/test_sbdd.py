"""Tests for SBDD construction from netlists and expressions."""

import pytest

from repro.bdd import build_robdds, build_sbdd, sbdd_from_exprs, sbdd_to_dot
from repro.circuits import c17, decoder, majority_voter, priority_encoder, random_netlist
from repro.expr import parse
from tests.conftest import all_envs


class TestBuildSbdd:
    @pytest.mark.parametrize(
        "factory",
        [c17, lambda: decoder(3), lambda: priority_encoder(5),
         lambda: majority_voter(5), lambda: random_netlist(6, 30, 4, seed=13)],
    )
    def test_equivalent_to_netlist(self, factory):
        nl = factory()
        sbdd = build_sbdd(nl)
        for env in all_envs(nl.inputs):
            assert sbdd.evaluate(env) == nl.evaluate(env)

    def test_node_count_includes_terminals(self, c17_netlist):
        sbdd = build_sbdd(c17_netlist)
        assert sbdd.node_count() == sbdd.internal_count() + 2

    def test_edge_count_is_twice_internal(self, c17_netlist):
        sbdd = build_sbdd(c17_netlist)
        assert sbdd.edge_count() == 2 * sbdd.internal_count()

    def test_constant_output(self):
        from repro.circuits import Netlist

        nl = Netlist("t", inputs=["a"], outputs=["one", "zero", "pass"])
        nl.add_gate("one", "CONST1", [])
        nl.add_gate("zero", "CONST0", [])
        nl.add_gate("pass", "BUF", ["a"])
        sbdd = build_sbdd(nl)
        assert sbdd.evaluate({"a": False}) == {"one": True, "zero": False, "pass": False}

    def test_support(self):
        nl = decoder(3)
        sbdd = build_sbdd(nl)
        assert sbdd.support() == frozenset(nl.inputs)

    def test_custom_order_changes_size_not_semantics(self):
        from repro.circuits import ripple_carry_adder

        nl = ripple_carry_adder(4)
        s1 = build_sbdd(nl, order=list(nl.inputs))
        s2 = build_sbdd(nl)
        assert s1.node_count() != s2.node_count()  # ordering matters
        for env in all_envs(nl.inputs):
            assert s1.evaluate(env) == s2.evaluate(env)
            break  # one spot check is enough here


class TestSharing:
    def test_sbdd_never_larger_than_separate_robdds(self):
        for factory in (lambda: decoder(4), lambda: priority_encoder(6), c17):
            nl = factory()
            sbdd = build_sbdd(nl)
            per_output = build_robdds(nl)
            total_internal = sum(s.internal_count() for _, s in per_output)
            assert sbdd.internal_count() <= total_internal

    def test_robdds_individually_equivalent(self):
        nl = decoder(3)
        for out, sub in build_robdds(nl):
            for env in all_envs(nl.inputs):
                assert sub.evaluate(env)[out] == nl.evaluate(env)[out]

    def test_identical_outputs_share_root(self):
        sbdd = sbdd_from_exprs({"f": parse("a & b"), "g": parse("b & a")})
        assert sbdd.roots["f"] == sbdd.roots["g"]


class TestFromExprs:
    def test_basic(self):
        sbdd = sbdd_from_exprs({"f": parse("(a & b) | c")})
        assert sbdd.evaluate({"a": 1, "b": 1, "c": 0})["f"]

    def test_order_inferred_from_expressions(self):
        sbdd = sbdd_from_exprs({"f": parse("q & p")})
        assert set(sbdd.manager.var_order) == {"p", "q"}


class TestDot:
    def test_dot_contains_nodes_and_edges(self, c17_netlist):
        sbdd = build_sbdd(c17_netlist)
        dot = sbdd_to_dot(sbdd)
        assert dot.startswith("digraph")
        assert "shape=box" in dot  # terminals
        assert "->" in dot

    def test_dot_without_false_terminal(self, c17_netlist):
        sbdd = build_sbdd(c17_netlist)
        dot = sbdd_to_dot(sbdd, include_false=False)
        assert " n0 " not in dot.replace("-> n0 ", " n0 ")
