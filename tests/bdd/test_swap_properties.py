"""Property tests for in-place reordering.

The contract of :func:`repro.bdd.reorder.swap_adjacent` is that node
ids keep denoting the same Boolean functions — so any sequence of
swaps (and any full sift) must leave every root's truth table intact
while only permuting the variable order.
"""

import itertools

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.bdd import BDD, build_sbdd
from repro.bdd.reorder import sift, sift_sbdd, swap_adjacent
from repro.expr import parse

EXPRS = [
    "(a & b) | (c & d)",
    "a ^ b ^ c ^ d ^ e",
    "(a | b) & (c | d) & (a | e)",
    "~(a & b) | (c ^ e)",
    "(a & ~b) | (~c & d & e)",
]
VARS = ["a", "b", "c", "d", "e"]


def _all_envs(names):
    for bits in itertools.product([False, True], repeat=len(names)):
        yield dict(zip(names, bits))


def _truth_tables(m, roots):
    return [
        tuple(m.evaluate(r, env) for env in _all_envs(VARS)) for r in roots
    ]


@given(
    swaps=st.lists(st.integers(min_value=0, max_value=len(VARS) - 2), max_size=40)
)
@settings(max_examples=50, deadline=None)
def test_swap_sequences_preserve_functions(swaps):
    m = BDD(VARS)
    roots = [m.from_expr(parse(text)) for text in EXPRS]
    before = _truth_tables(m, roots)
    for level in swaps:
        swap_adjacent(m, level)
    assert _truth_tables(m, roots) == before
    assert sorted(m.var_order) == sorted(VARS)


def test_single_swap_is_involution():
    m = BDD(VARS)
    roots = [m.from_expr(parse(text)) for text in EXPRS]
    order = m.var_order
    tables = _truth_tables(m, roots)
    for level in range(len(VARS) - 1):
        swap_adjacent(m, level)
        swap_adjacent(m, level)
        assert m.var_order == order
        assert _truth_tables(m, roots) == tables


def test_swap_out_of_range_raises():
    m = BDD(["a", "b"])
    with pytest.raises(IndexError):
        swap_adjacent(m, 1)
    with pytest.raises(IndexError):
        swap_adjacent(m, -1)


def test_sift_never_grows_and_preserves_functions():
    m = BDD(VARS)
    roots = [m.from_expr(parse(text)) for text in EXPRS]
    tables = _truth_tables(m, roots)
    initial = len(m.reachable(roots))
    stats = {}
    final = sift(m, roots, max_rounds=2, stats=stats)
    assert final <= initial
    assert stats["final_size"] == final
    assert stats["initial_size"] == initial
    assert _truth_tables(m, roots) == tables


@pytest.mark.parametrize("name", ["c17", "mult4", "ctrl_like", "hamming_dec"])
def test_full_sift_round_preserves_suite_circuits(name):
    """A full sift round on real suite circuits keeps every output's
    truth table identical to the netlist's reference evaluation."""
    from repro.bench.suites import circuit

    netlist = circuit(name)
    sbdd = build_sbdd(netlist)
    before = sbdd.node_count()
    size = sift_sbdd(sbdd, max_rounds=1)
    assert size <= before
    assert size == sbdd.node_count()
    m = sbdd.manager
    for env in _all_envs(netlist.inputs):
        expected = netlist.evaluate(env)
        for out, root in sbdd.roots.items():
            assert m.evaluate(root, env) == expected[out], (name, out, env)


def test_sift_respects_time_budget():
    m = BDD(VARS)
    roots = [m.from_expr(parse(text)) for text in EXPRS]
    tables = _truth_tables(m, roots)
    sift(m, roots, time_budget=0.0, max_rounds=5)
    # A zero budget may cut sifting short at any point, but functions
    # must still be intact.
    assert _truth_tables(m, roots) == tables
