"""Smoke + shape tests for the experiment harness (fast configurations).

The full experiment runs live in benchmarks/; here each harness function
is exercised on reduced settings and its *shape* claims are asserted.
"""

import pytest

from repro.bench import (
    fig9_pareto,
    fig10_convergence,
    fig11_gaps,
    fig12_power_delay,
    fig13_vs_magic,
    run_compact,
    suite,
    table1_properties,
    table3_sbdd_vs_robdds,
    table4_vs_prior,
)
from repro.bench.experiments import table2_gamma
from repro.bench.tables import Table, normalised_average


def entry(name):
    return {b.name: b for b in suite("full")}[name]


class TestRunCompact:
    def test_record_fields(self):
        run = run_compact(entry("c17"), gamma=0.5, time_limit=20)
        assert run.circuit == "c17"
        assert run.semiperimeter == run.rows + run.cols
        assert run.max_dimension == max(run.rows, run.cols)
        assert run.optimal
        assert run.synthesis_time > 0


class TestTableFormatting:
    def test_table_renders(self):
        t = Table("T", ["a", "b"])
        t.add_row(1, 2.5)
        text = t.render()
        assert "T" in text and "2.5" in text

    def test_wrong_arity_rejected(self):
        t = Table("T", ["a"])
        with pytest.raises(ValueError):
            t.add_row(1, 2)

    def test_normalised_average(self):
        assert normalised_average([1, 2], [2, 4]) == pytest.approx(0.5)


class TestTable1:
    def test_rows_cover_suite(self):
        table, rows = table1_properties("fast")
        assert len(rows) == len(suite("fast"))
        for r in rows:
            assert r["edges"] == 2 * (r["nodes"] - 2) or r["nodes"] <= 2


class TestTable2:
    def test_gamma_shape_on_small_subset(self, monkeypatch):
        import repro.bench.experiments as exp

        small = [entry("c17"), entry("parity16")]
        monkeypatch.setattr(exp, "suite", lambda tier=None, family=None: small)
        table, runs = exp.table2_gamma(time_limit=30)
        assert runs
        by = {}
        for r in runs:
            by.setdefault(r.circuit, {})[r.gamma] = r
        for circ, gammas in by.items():
            # gamma=1 minimizes S; gamma=0 minimizes D.
            assert gammas[1.0].semiperimeter <= gammas[0.0].semiperimeter
            assert gammas[0.0].max_dimension <= gammas[1.0].max_dimension


class TestTable3:
    def test_sbdd_never_bigger(self, monkeypatch):
        import repro.bench.experiments as exp

        small = [entry("dec6"), entry("c17")]
        monkeypatch.setattr(exp, "suite", lambda tier=None, family=None: small)
        table, rows = exp.table3_sbdd_vs_robdds(time_limit=30)
        assert rows  # c17 has 2 outputs, dec6 has 64
        for r in rows:
            assert r["sbdd_nodes"] <= r["robdd_nodes"]
            assert r["sbdd_S"] <= r["robdd_S"] + 2  # ties possible at tiny scale


class TestTable4AndFig12:
    def test_compact_beats_prior(self, monkeypatch):
        import repro.bench.experiments as exp

        small = [entry("c17"), entry("dec6"), entry("parity16")]
        monkeypatch.setattr(exp, "suite", lambda tier=None, family=None: small)
        table, rows = exp.table4_vs_prior(time_limit=30)
        for r in rows:
            assert r["S"] < r["prior_S"]
            assert r["area"] < r["prior_area"]
        fig, summary = fig12_power_delay(rows)
        assert summary["power_ratio_avg"] <= 1.0
        assert summary["delay_ratio_avg"] < 1.0


class TestFig9:
    def test_pareto_points_non_dominated(self):
        table, series = fig9_pareto(circuits=("c17",), n_gammas=3, time_limit=20)
        points = series["c17"]
        assert points
        for p in points:
            assert not any(
                q != p and q[0] <= p[0] and q[1] <= p[1] for q in points
            )


class TestFig10:
    def test_trace_monotone_bound(self):
        table, trace = fig10_convergence(circuit="c17", time_limit=15)
        assert len(trace) >= 2
        bounds = [b for _, _, b, _ in trace]
        assert bounds == sorted(bounds)
        incumbents = [i for _, i, _, _ in trace if i is not None]
        assert all(a >= b for a, b in zip(incumbents, incumbents[1:]))


class TestFig11:
    def test_gaps_reported(self):
        table, gaps = fig11_gaps(circuits=("voter9",), time_limit=3)
        assert "voter9" in gaps
        assert gaps["voter9"] >= 0


class TestFig13:
    def test_magic_comparison_shape(self, monkeypatch):
        import repro.bench.experiments as exp

        small = [b for b in suite("fast") if b.name in ("i2c_like", "dec6")]
        monkeypatch.setattr(exp, "suite", lambda tier=None, family=None: small)
        table, summary = exp.fig13_vs_magic(time_limit=30)
        assert 0 < summary["power_ratio_avg"]
        assert 0 < summary["delay_ratio_avg"]
