"""Tests for the bench summary collation."""

from repro.bench import generate_summary


class TestGenerateSummary:
    def test_empty_dir(self, tmp_path):
        text = generate_summary(tmp_path)
        assert "no artifacts" in text

    def test_collates_in_order(self, tmp_path):
        (tmp_path / "fig9_pareto.txt").write_text("FIG9 DATA")
        (tmp_path / "table1_properties.txt").write_text("TABLE1 DATA")
        (tmp_path / "zz_custom.txt").write_text("CUSTOM")
        text = generate_summary(tmp_path)
        assert text.index("table1_properties") < text.index("fig9_pareto")
        assert "CUSTOM" in text
        assert "TABLE1 DATA" in text

    def test_markdown_structure(self, tmp_path):
        (tmp_path / "table1_properties.txt").write_text("X")
        text = generate_summary(tmp_path, title="My run")
        assert text.startswith("# My run")
        assert "```" in text
