"""Tests for the benchmark suite definitions."""

import pytest

from repro.bench import circuit, suite
from repro.bench.suites import SUITE_TIERS


class TestSuite:
    def test_fast_suite_nonempty(self):
        entries = suite("fast")
        assert len(entries) >= 12

    def test_full_extends_fast(self):
        fast = {e.name for e in suite("fast")}
        full = {e.name for e in suite("full")}
        assert fast < full

    def test_unknown_tier_rejected(self):
        with pytest.raises(ValueError):
            suite("warp")

    def test_family_filter(self):
        control = suite("fast", family="epfl-control-like")
        assert control and all(e.family == "epfl-control-like" for e in control)

    def test_every_entry_builds_and_checks(self):
        for entry in suite("fast"):
            nl = entry.build()
            nl.check()
            assert nl.name == entry.name

    def test_tiers_constant(self):
        assert SUITE_TIERS == ("fast", "full")

    def test_circuit_lookup(self):
        nl = circuit("c17")
        assert nl.name == "c17"
        with pytest.raises(KeyError):
            circuit("nonexistent")

    def test_env_var_selects_tier(self, monkeypatch):
        monkeypatch.setenv("REPRO_SUITE", "full")
        assert {e.name for e in suite()} == {e.name for e in suite("full")}

    def test_names_unique(self):
        names = [e.name for e in suite("full")]
        assert len(names) == len(set(names))
