"""Chaos harness: deterministic schedules and end-to-end equality."""

from __future__ import annotations

import pytest

from repro.campaign.bench import run_campaign_bench
from repro.campaign.chaos import ChaosConfig, ChaosMonkey


class _RecordingClient:
    def __init__(self):
        self.kills = 0

    def kill_connection(self):
        self.kills += 1


def test_chaos_config_validation():
    with pytest.raises(ValueError):
        ChaosConfig(kill_workers=-1)
    with pytest.raises(ValueError):
        ChaosConfig(strike_rate=1.5)


def test_monkey_spends_exactly_its_budget():
    config = ChaosConfig(drop_connections=3, strike_rate=1.0, seed=5)
    monkey = ChaosMonkey(config)
    client = _RecordingClient()
    for shard in range(10):
        monkey.before_shard(shard, client)
    assert client.kills == 3
    assert [e["kind"] for e in monkey.events] == ["drop_connection"] * 3


def test_monkey_schedule_is_seed_deterministic():
    def run(seed: int) -> list[dict]:
        monkey = ChaosMonkey(
            ChaosConfig(drop_connections=4, strike_rate=0.5, seed=seed)
        )
        client = _RecordingClient()
        for shard in range(30):
            monkey.before_shard(shard, client)
        return monkey.events

    assert run(3) == run(3)
    assert run(3) != run(4)


def test_kill_worker_without_server_refunds_the_strike():
    monkey = ChaosMonkey(ChaosConfig(kill_workers=1, strike_rate=1.0))
    client = _RecordingClient()
    for shard in range(5):
        monkey.before_shard(shard, client)
    assert monkey.events == []
    assert client.kills == 0


def test_corrupt_cache_without_entries_refunds_the_strike(tmp_path):
    monkey = ChaosMonkey(
        ChaosConfig(corrupt_cache=1, strike_rate=1.0), cache_dir=tmp_path
    )
    client = _RecordingClient()
    monkey.before_shard(0, client)
    assert monkey.events == []
    (tmp_path / "entry.json").write_text('{"schema": "x", "result": 1}')
    monkey.before_shard(1, client)
    assert [e["kind"] for e in monkey.events] == ["corrupt_cache"]
    # The entry was truncated, not deleted.
    assert (tmp_path / "entry.json").exists()
    assert len((tmp_path / "entry.json").read_text()) < len(
        '{"schema": "x", "result": 1}'
    )


def test_chaos_campaign_is_bit_identical_to_clean_run():
    summary = run_campaign_bench(
        samples=40, shard_size=5, chaos=True, streams=2, timeout=60.0
    )
    assert summary["match"] is True
    assert summary["chaos_events"]  # chaos actually happened
    assert summary["checkpoint_lines_corrupted"] >= 1
    assert 0.0 <= summary["yield_fraction"] <= 1.0
