"""Checkpoint journal: durability, recovery, refusal semantics."""

from __future__ import annotations

import json

import pytest

from repro.campaign.checkpoint import (
    CHECKPOINT_SCHEMA,
    CheckpointError,
    CheckpointJournal,
)
from repro.campaign.chaos import corrupt_checkpoint
from repro.perf import counters

DIGEST = "d" * 64
RECORDS = {
    0: {"samples": 5, "functional": 3},
    1: {"samples": 5, "functional": 4},
    2: {"samples": 5, "functional": 5},
}


def _journal_with_records(path) -> None:
    with CheckpointJournal(path) as journal:
        assert journal.open(DIGEST) == {}
        for shard, record in RECORDS.items():
            journal.append(shard, record)


def test_create_append_recover_round_trip(tmp_path):
    path = tmp_path / "ckpt.ndjson"
    _journal_with_records(path)
    with CheckpointJournal(path) as journal:
        assert journal.open(DIGEST) == RECORDS


def test_header_binds_config_digest(tmp_path):
    path = tmp_path / "ckpt.ndjson"
    _journal_with_records(path)
    with pytest.raises(CheckpointError, match="different campaign"):
        CheckpointJournal(path).open("e" * 64)


def test_garbage_file_is_refused(tmp_path):
    path = tmp_path / "ckpt.ndjson"
    path.write_text("this is not a checkpoint\n")
    with pytest.raises(CheckpointError, match="bad or missing header"):
        CheckpointJournal(path).open(DIGEST)


def test_torn_tail_is_dropped_and_compacted(tmp_path):
    path = tmp_path / "ckpt.ndjson"
    _journal_with_records(path)
    # Crash mid-append: the final line is truncated in the middle.
    text = path.read_text()
    path.write_text(text[: len(text) - 25])
    counters.reset("campaign_ckpt_dropped")
    with CheckpointJournal(path) as journal:
        records = journal.open(DIGEST)
        assert records == {0: RECORDS[0], 1: RECORDS[1]}
        assert counters.get("campaign_ckpt_dropped") == 1
        # The compacted journal appends cleanly after the torn tail.
        journal.append(2, RECORDS[2])
    with CheckpointJournal(path) as journal:
        assert journal.open(DIGEST) == RECORDS


def test_corrupted_line_fails_its_checksum(tmp_path):
    path = tmp_path / "ckpt.ndjson"
    _journal_with_records(path)
    assert corrupt_checkpoint(path, seed=7) == 1
    counters.reset("campaign_ckpt_dropped")
    with CheckpointJournal(path) as journal:
        records = journal.open(DIGEST)
    assert counters.get("campaign_ckpt_dropped") == 1
    assert len(records) == 2
    for shard, record in records.items():
        assert record == RECORDS[shard]


def test_record_cannot_be_spliced_onto_another_shard(tmp_path):
    path = tmp_path / "ckpt.ndjson"
    _journal_with_records(path)
    lines = path.read_text().splitlines()
    entry = json.loads(lines[1])
    entry["shard"] = 9  # keep the old checksum
    lines[1] = json.dumps(entry, sort_keys=True)
    path.write_text("\n".join(lines) + "\n")
    with CheckpointJournal(path) as journal:
        records = journal.open(DIGEST)
    assert 9 not in records


def test_append_requires_open_and_reopen_is_refused(tmp_path):
    path = tmp_path / "ckpt.ndjson"
    journal = CheckpointJournal(path)
    with pytest.raises(CheckpointError, match="not open"):
        journal.append(0, {"x": 1})
    journal.open(DIGEST)
    with pytest.raises(CheckpointError, match="already open"):
        journal.open(DIGEST)
    journal.close()
    journal.close()  # idempotent


def test_header_format(tmp_path):
    path = tmp_path / "ckpt.ndjson"
    with CheckpointJournal(path) as journal:
        journal.open(DIGEST)
    header = json.loads(path.read_text().splitlines()[0])
    assert header == {"schema": CHECKPOINT_SCHEMA, "config_digest": DIGEST}
