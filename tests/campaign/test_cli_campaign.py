"""CLI surface: ``repro campaign`` and ``repro bench campaign``."""

from __future__ import annotations

import json

import pytest

from repro.cli import main


def test_campaign_cli_with_in_process_server(tmp_path, capsys):
    ckpt = tmp_path / "ckpt.ndjson"
    argv = [
        "campaign", "c17", "--samples", "15", "--shard-size", "5",
        "--p-stuck-on", "0.01", "--p-stuck-off", "0.05",
        "--jobs", "2", "--checkpoint", str(ckpt), "--json",
    ]
    assert main(argv) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["samples"] == 15
    assert report["shards"] == {"total": 3, "resumed": 0, "computed": 3}
    # Rerunning with the same checkpoint resumes every shard and prints
    # the same deterministic report body.
    assert main(argv) == 0
    resumed = json.loads(capsys.readouterr().out)
    assert resumed["shards"] == {"total": 3, "resumed": 3, "computed": 0}
    for key in ("by_faults", "provisioning", "yield_fraction", "config_digest"):
        assert resumed[key] == report[key]


def test_campaign_cli_text_output(capsys):
    assert main(["campaign", "c17", "--samples", "10", "--shard-size", "5",
                 "--p-stuck-off", "0.05", "--jobs", "2"]) == 0
    out = capsys.readouterr().out
    assert "campaign: c17" in out
    assert "spare-line provisioning" in out


def test_campaign_cli_unknown_circuit_is_usage_error(capsys):
    with pytest.raises(SystemExit) as exc_info:
        main(["campaign", "definitely-not-a-circuit"])
    assert exc_info.value.code == 2


def test_campaign_cli_rejects_bad_knobs():
    for argv in (
        ["campaign", "c17", "--samples", "0"],
        ["campaign", "c17", "--streams", "0"],
    ):
        with pytest.raises(SystemExit) as exc_info:
            main(argv)
        assert exc_info.value.code == 2


def test_bench_campaign_smoke(capsys):
    assert main(["bench", "campaign", "--samples", "10", "--shard-size", "5",
                 "--p-stuck-off", "0.05"]) == 0
    out = capsys.readouterr().out
    assert "campaign bench: c17" in out
    assert "match" not in out  # no chaos requested, no equality claim
