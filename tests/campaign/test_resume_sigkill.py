"""Acceptance: SIGKILL a campaign halfway, resume, bit-identical report."""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.campaign.runner import CampaignConfig, run_campaign
from repro.service import RetryPolicy, ServiceClient
from repro.service.server import ServiceServer

_SRC = Path(__file__).resolve().parents[2] / "src"

_CHILD = """
import sys, time
import repro.campaign.runner as runner
from repro.campaign.runner import CampaignConfig, run_campaign
from repro.service import RetryPolicy, ServiceClient
from repro.service.server import ServiceServer

# Throttle shard completion so the parent can SIGKILL mid-campaign at a
# deterministic point; the *records* are unaffected (pure functions).
_orig = runner.compute_shard
def _slow(*args, **kwargs):
    time.sleep(0.05)
    return _orig(*args, **kwargs)
runner.compute_shard = _slow

config = CampaignConfig.from_suite(
    "c17", samples=300, shard_size=5, p_stuck_on=0.01, p_stuck_off=0.05
)
with ServiceServer(("tcp", "127.0.0.1", 0), jobs=2) as server:
    _kind, host, port = server.address
    factory = lambda: ServiceClient(
        tcp=(host, port), timeout=60.0, retry=RetryPolicy(base_delay_s=0.01)
    )
    run_campaign(config, factory, checkpoint=sys.argv[1], streams=1)
print("DONE")
"""


def _config() -> CampaignConfig:
    return CampaignConfig.from_suite(
        "c17", samples=300, shard_size=5, p_stuck_on=0.01, p_stuck_off=0.05
    )


def test_sigkill_halfway_then_resume_matches_uninterrupted(tmp_path):
    ckpt = tmp_path / "ckpt.ndjson"
    env = dict(os.environ, PYTHONPATH=str(_SRC))
    child = subprocess.Popen(
        [sys.executable, "-c", _CHILD, str(ckpt)],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
    )
    try:
        # Wait for a few durably-journalled shards, then pull the plug.
        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline:
            if ckpt.exists() and ckpt.read_text().count("\n") >= 5:
                break
            time.sleep(0.01)
        else:
            pytest.fail("campaign child never journalled its first shards")
        child.send_signal(signal.SIGKILL)
        child.wait(timeout=30)
    finally:
        if child.poll() is None:
            child.kill()
            child.wait(timeout=30)
    assert child.returncode == -signal.SIGKILL

    with ServiceServer(("tcp", "127.0.0.1", 0), jobs=2) as server:
        _kind, host, port = server.address

        def factory() -> ServiceClient:
            return ServiceClient(
                tcp=(host, port), timeout=60.0, retry=RetryPolicy(base_delay_s=0.01)
            )

        resumed = run_campaign(_config(), factory, checkpoint=ckpt, streams=2)
        baseline = run_campaign(_config(), factory, streams=2)

    # Zero lost, zero duplicated samples: the resumed campaign's yield
    # curve is bit-identical to an uninterrupted run's.
    assert resumed.result_dict() == baseline.result_dict()
    assert resumed.samples == 300
    assert resumed.shards["total"] == 60
    assert resumed.shards["resumed"] >= 3  # the SIGKILL left real progress behind
    assert resumed.shards["resumed"] + resumed.shards["computed"] == 60
