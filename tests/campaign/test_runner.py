"""Campaign runner: determinism, resume, merge, config semantics."""

from __future__ import annotations

import pytest

from repro.campaign.runner import CampaignConfig, merge_records, run_campaign
from repro.service import RetryPolicy, ServiceClient
from repro.service.server import ServiceServer

CONFIG = dict(samples=30, shard_size=5, p_stuck_on=0.01, p_stuck_off=0.05)


@pytest.fixture(scope="module")
def server():
    srv = ServiceServer(("tcp", "127.0.0.1", 0), jobs=2, queue_size=16)
    srv.start()
    yield srv
    srv.stop()


@pytest.fixture(scope="module")
def factory(server):
    _kind, host, port = server.address

    def make() -> ServiceClient:
        return ServiceClient(
            tcp=(host, port), timeout=60.0, retry=RetryPolicy(base_delay_s=0.01)
        )

    return make


def _config(**overrides) -> CampaignConfig:
    knobs = dict(CONFIG)
    knobs.update(overrides)
    return CampaignConfig.from_suite("c17", **knobs)


def test_config_shapes_and_digest():
    config = _config()
    assert config.num_shards == 6
    assert config.shard_samples(0) == 5
    assert _config(samples=28).shard_samples(5) == 3
    with pytest.raises(ValueError):
        _config().shard_samples(6)
    assert config.digest() == _config().digest()
    assert config.digest() != _config(seed=1).digest()
    assert config.digest() != _config(p_stuck_off=0.06).digest()
    assert config.digest() != _config(remap=True).digest()


def test_config_validation():
    for bad in [dict(samples=0), dict(shard_size=0), dict(spare_rows=-1),
                dict(p_stuck_on=1.5)]:
        with pytest.raises(ValueError):
            _config(**bad)
    with pytest.raises(KeyError):
        CampaignConfig.from_suite("no-such-circuit")


def test_campaign_is_deterministic_across_runs_and_streams(factory):
    first = run_campaign(_config(), factory, streams=1)
    second = run_campaign(_config(), factory, streams=3)
    assert first.result_dict() == second.result_dict()
    assert first.samples == 30
    assert sum(row["samples"] for row in first.by_faults) == 30
    assert first.provisioning[-1]["fraction"] == 1.0
    assert 0.0 <= first.yield_fraction <= 1.0


def test_checkpoint_resume_is_bit_identical(tmp_path, factory):
    baseline = run_campaign(_config(), factory)
    ckpt = tmp_path / "ckpt.ndjson"
    partial = run_campaign(_config(), factory, checkpoint=ckpt, max_shards=3)
    assert partial.shards == {"total": 6, "resumed": 0, "computed": 3}
    assert partial.samples == 15
    resumed = run_campaign(_config(), factory, checkpoint=ckpt)
    assert resumed.shards == {"total": 6, "resumed": 3, "computed": 3}
    assert resumed.result_dict() == baseline.result_dict()
    # A third run resumes everything and recomputes nothing.
    replay = run_campaign(_config(), factory, checkpoint=ckpt)
    assert replay.shards == {"total": 6, "resumed": 6, "computed": 0}
    assert replay.result_dict() == baseline.result_dict()


def test_remap_mode_reports_recovery(factory):
    report = run_campaign(
        _config(spare_rows=1, spare_cols=1, remap=True), factory, streams=2
    )
    assert report.remap is not None
    assert report.remap["recovered"] <= report.remap["attempted"]
    assert sum(report.remap["stages"].values()) == report.remap["attempted"]
    # Remapping can only help: recovered + functional covers at least
    # the functional dies of the bare design.
    assert report.remap["attempted"] > 0


def test_merge_is_order_independent():
    config = _config(samples=10, shard_size=5)
    records = {
        0: {"samples": 5, "functional": 4, "distinct": 5,
            "by_faults": {"0": [2, 2], "1": [3, 2]},
            "levels": {"0": 2, "1": 3}, "remap": None},
        1: {"samples": 5, "functional": 3, "distinct": 4,
            "by_faults": {"1": [1, 1], "2": [4, 2]},
            "levels": {"0": 1, "2": 4}, "remap": None},
    }
    merged = merge_records(config, records, shards_resumed=0)
    reversed_merge = merge_records(
        config, dict(reversed(records.items())), shards_resumed=0
    )
    assert merged.result_dict() == reversed_merge.result_dict()
    assert merged.samples == 10
    assert merged.functional == 7
    assert [row["faults"] for row in merged.by_faults] == [0, 1, 2]
    assert merged.by_faults[1] == {
        "faults": 1, "samples": 4, "functional": 3, "yield": 0.75,
    }
    assert merged.provisioning[-1]["cumulative"] == 10


def test_run_campaign_rejects_bad_streams(factory):
    with pytest.raises(ValueError):
        run_campaign(_config(), factory, streams=0)
