"""Shared fixtures for the static-analysis tests."""

from __future__ import annotations

import json

import pytest

from repro.circuits import c17
from repro.core.compact import Compact
from repro.crossbar.serialize import design_from_json, design_to_json


@pytest.fixture(scope="session")
def c17_design():
    """A real synthesized design (gamma=1, Method A) — do not mutate."""
    return Compact(gamma=1.0, method="oct").synthesize_netlist(c17()).design


@pytest.fixture(scope="session")
def c17_payload(c17_design):
    """The serialized form of :func:`c17_design` — copy before mutating."""
    return json.loads(design_to_json(c17_design))


@pytest.fixture
def fresh_design(c17_payload):
    """A private, mutable reload of the synthesized c17 design."""
    return design_from_json(json.dumps(c17_payload))
