// Known-bad fixture: wire w is read by g1 but never driven (N002),
// and input b is never used (N005).
module undriven (a, b, y);
  input a, b;
  output y;
  wire w;
  and g1 (y, a, w);
endmodule
