"""The ``repro check`` / ``repro validate --json`` CLI contract."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.check import DIAGNOSTICS_SCHEMA
from repro.circuits import c17
from repro.cli import main
from repro.io import write_blif

FIXTURES = Path(__file__).parent / "fixtures"
EXAMPLES = Path(__file__).resolve().parents[2] / "examples" / "circuits"


def exit_code(argv):
    try:
        return main(argv)
    except SystemExit as exc:
        return exc.code if isinstance(exc.code, int) else 2


class TestCheckExitCodes:
    def test_clean_file_exits_zero(self):
        assert exit_code(["check", str(EXAMPLES / "c17.v")]) == 0

    def test_findings_exit_one(self):
        assert exit_code(["check", str(FIXTURES / "cycle.blif")]) == 1

    def test_missing_path_is_a_usage_error(self):
        assert exit_code(["check", "no/such/file.blif"]) == 2

    def test_unsupported_suffix_is_a_usage_error(self, tmp_path):
        target = tmp_path / "notes.txt"
        target.write_text("hello")
        assert exit_code(["check", str(target)]) == 2

    def test_directory_walk(self, capsys):
        assert exit_code(["check", str(FIXTURES)]) == 1
        out = capsys.readouterr().out
        for code in ("N001", "N002", "N005", "N007", "N008", "N010"):
            assert f"[{code}]" in out

    def test_info_needs_verbose(self, capsys, c17_payload, tmp_path):
        target = tmp_path / "c17.json"
        target.write_text(json.dumps(c17_payload))
        assert exit_code(["check", str(target)]) == 0
        assert "L001" not in capsys.readouterr().out
        assert exit_code(["check", "--verbose", str(target)]) == 0
        assert "L001" in capsys.readouterr().out


class TestCheckJson:
    def test_json_document_shape(self, capsys):
        assert exit_code(["check", "--json", str(FIXTURES / "cycle.blif")]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == DIAGNOSTICS_SCHEMA
        assert payload["tool"] == "repro check"
        assert payload["ok"] is False
        assert payload["summary"]["error"] == 2
        assert {d["code"] for d in payload["diagnostics"]} == {"N001", "N002"}
        spans = {d["code"]: d["span"] for d in payload["diagnostics"]}
        assert spans["N001"]["line"] == 6

    def test_clean_json_document(self, capsys):
        assert exit_code(["check", "--json", str(EXAMPLES / "maj3.pla")]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True and payload["diagnostics"] == []


class TestSelfLintCli:
    def test_self_lint_of_shipped_source_is_clean(self):
        assert exit_code(["check", "--self"]) == 0

    def test_self_lint_of_a_bad_tree_fails(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text("try:\n    work()\nexcept:\n    pass\n")
        assert exit_code(["check", "--self", "--src", str(tmp_path)]) == 1
        assert "[C002]" in capsys.readouterr().out


class TestValidateJson:
    @pytest.fixture
    def design_file(self, c17_payload, tmp_path):
        target = tmp_path / "c17.json"
        target.write_text(json.dumps(c17_payload))
        return target

    @pytest.fixture
    def circuit_file(self, tmp_path):
        # The design fixture was synthesized from repro.circuits.c17()
        # (G-names), so validate against that same netlist.
        target = tmp_path / "c17.blif"
        target.write_text(write_blif(c17()))
        return target

    def test_validate_json_emits_diagnostics_document(self, design_file, circuit_file, capsys):
        rc = exit_code(
            [
                "validate", str(design_file),
                "--circuit", str(circuit_file),
                "--json",
            ]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == DIAGNOSTICS_SCHEMA
        assert payload["ok"] is True
        assert payload["diagnostics"] == []

    def test_validate_json_reports_mismatch_as_v001(
        self, c17_payload, circuit_file, tmp_path, capsys
    ):
        broken = dict(c17_payload, cells=c17_payload["cells"][:-2])
        target = tmp_path / "broken.json"
        target.write_text(json.dumps(broken))
        rc = exit_code(
            [
                "validate", str(target),
                "--circuit", str(circuit_file),
                "--json",
            ]
        )
        assert rc == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert "V001" in {d["code"] for d in payload["diagnostics"]}

    def test_validate_under_fault_map(
        self, design_file, circuit_file, c17_payload, tmp_path, capsys
    ):
        fmap = {
            "format": "repro.faults/1",
            "rows": c17_payload["rows"],
            "cols": c17_payload["cols"],
            "faults": [
                {
                    "row": c17_payload["cells"][0]["row"],
                    "col": c17_payload["cells"][0]["col"],
                    "kind": "stuck_off",
                }
            ],
        }
        fmap_file = tmp_path / "faults.json"
        fmap_file.write_text(json.dumps(fmap))
        rc = exit_code(
            [
                "validate", str(design_file),
                "--circuit", str(circuit_file),
                "--fault-map", str(fmap_file),
                "--json",
            ]
        )
        payload = json.loads(capsys.readouterr().out)
        # Knocking out a programmed literal breaks the design under faults.
        assert rc == 1
        assert "V002" in {d["code"] for d in payload["diagnostics"]}


class TestLayeredCertificateCli:
    """repro check on 3D artifacts: L003 is INFO, a forged L003 is exit 1."""

    @pytest.fixture(scope="class")
    def layered_artifact(self, tmp_path_factory):
        from repro.bench.suites import circuit
        from repro.core import Compact
        from repro.crossbar import design_to_json

        design = Compact(layers=2).synthesize_netlist(circuit("c17")).design
        target = tmp_path_factory.mktemp("artifacts") / "c17_2l.json"
        target.write_text(design_to_json(design))
        return target

    def test_certified_artifact_exits_zero_with_l003(
        self, layered_artifact, capsys
    ):
        assert exit_code(["check", "--json", str(layered_artifact)]) == 0
        payload = json.loads(capsys.readouterr().out)
        codes = {d["code"] for d in payload["diagnostics"]}
        assert "L003" in codes and "L004" not in codes

    def test_forged_certificate_exits_one_with_l004(
        self, layered_artifact, capsys, monkeypatch
    ):
        import repro.check.design as design_mod

        real = design_mod.layered_semiperimeter_lower_bound

        def forged(graph, ports, layers):
            cert = dict(real(graph, ports, layers))
            cert["oct_lb"] = cert["n"]
            cert["s_lb"] = 3 * cert["n"]
            return cert

        monkeypatch.setattr(
            design_mod, "layered_semiperimeter_lower_bound", forged
        )
        assert exit_code(["check", "--json", str(layered_artifact)]) == 1
        payload = json.loads(capsys.readouterr().out)
        codes = {d["code"] for d in payload["diagnostics"]}
        assert "L004" in codes and "L003" not in codes
