"""Per-plane design checks and the D007 via-consistency rule on 3D designs."""

from __future__ import annotations

import pytest

from repro.bench.suites import circuit
from repro.check import check_design
from repro.crossbar import CrossbarDesign3D, Lit, OFF, ON
from repro.crossbar.design import h_plane, v_plane
from repro.core import Compact


def codes(diags):
    return sorted(d.code for d in diags)


def findings(diags):
    return [d for d in diags if d.is_finding]


@pytest.fixture(scope="module")
def layered_c17():
    return Compact(layers=2).synthesize_netlist(circuit("c17")).design


class TestCleanLayeredDesign:
    def test_synthesized_3d_design_is_clean(self, layered_c17):
        assert findings(check_design(layered_c17)) == []

    def test_layered_certificate_replaces_planar_bound(self, layered_c17):
        # S = n + #VH is a planar identity; L001/L002 must not fire on a
        # 3D design.  The layered L003 certificate fires instead — the
        # dispatch never silently skips bound checking.
        diags = check_design(layered_c17)
        assert not any(d.code in ("L001", "L002") for d in diags)
        certs = [d for d in diags if d.code == "L003"]
        assert len(certs) == 1
        cert = certs[0]
        assert cert.data["layers"] == 2
        assert cert.data["s_lb"] <= cert.data["s_labeled"]
        assert cert.data["gap"] == cert.data["s_labeled"] - cert.data["s_lb"]
        # The payload carries its own re-checkable witnesses.
        assert cert.data["packing"] is not None
        assert cert.data["lp_witnesses"] is not None

    @pytest.mark.parametrize(
        "component,forge",
        [
            ("oct_lb", lambda c: c.update(oct_lb=c["n"], s_lb=2 * c["n"])),
            ("packing", lambda c: c.update(
                packing=[["x", "y", "z"]] + list(c["packing"]),
                packing_lb=len(c["packing"]) + 1,
            )),
            ("plane capacity", lambda c: c.update(even_planes=c["even_planes"] + 1)),
            ("plane capacity", lambda c: c.update(layers=c["layers"] + 1)),
        ],
    )
    def test_forged_l003_certificate_fails_closed(
        self, layered_c17, monkeypatch, component, forge
    ):
        # The verifier re-derives every component from the design graph;
        # a tampered certificate must surface as L004 (an ERROR), never
        # as a trusted L003.
        import repro.check.design as design_mod

        real = design_mod.layered_semiperimeter_lower_bound

        def forged(graph, ports, layers):
            cert = dict(real(graph, ports, layers))
            forge(cert)
            return cert

        monkeypatch.setattr(
            design_mod, "layered_semiperimeter_lower_bound", forged
        )
        diags = check_design(layered_c17)
        found = [d for d in diags if d.code == "L004"]
        assert len(found) == 1
        assert "failed self-verification" in found[0].message
        assert component in found[0].data["failed_components"]
        assert not any(d.code == "L003" for d in diags)

    def test_spare_line_reported_per_plane(self, layered_c17):
        wider = CrossbarDesign3D(
            layered_c17.name,
            plane_sizes=[layered_c17.plane_sizes[0]]
            + [s + 1 for s in layered_c17.plane_sizes[1:]],
            input_row=layered_c17.input_row,
            output_rows=dict(layered_c17.output_rows),
            constant_outputs=dict(layered_c17.constant_outputs),
        )
        for l, r, c, lit in layered_c17.cells3d():
            wider.set_cell3(l, r, c, lit)
        for p, labels in enumerate(layered_c17.plane_labels):
            wider.plane_labels[p].update(labels)
        spare = [d for d in check_design(wider) if d.code == "D005"]
        assert spare, "padded planes must report spare lines"
        assert any("plane" in d.message for d in spare)


class TestViaConsistency:
    def test_d007_missing_via(self, layered_c17):
        d = layered_c17
        vias = [
            (l, r, c)
            for l, r, c, lit in d.cells3d()
            if lit.is_constant() and lit.positive
        ]
        assert vias, "2-layer c17 should stitch at least one node"
        l, r, c = vias[0]
        del d._cells3d[(l, r, c)]
        try:
            diags = check_design(d)
            assert "D007" in codes(diags)
            assert any(
                "no always-on via" in diag.message
                for diag in diags
                if diag.code == "D007"
            )
        finally:
            d._cells3d[(l, r, c)] = ON

    def test_d007_node_on_too_many_planes(self):
        d = CrossbarDesign3D(
            "wide", plane_sizes=[2, 2, 2], input_row=0, output_rows={"f": 1}
        )
        d.set_cell3(0, 0, 0, Lit("a", True))
        d.set_cell3(0, 1, 1, ON)
        d.set_cell3(1, 1, 0, ON)
        d.plane_labels[0][1] = "n"
        d.plane_labels[1][1] = "n"
        d.plane_labels[2][0] = "n"
        diags = [x for x in check_design(d) if x.code == "D007"]
        assert diags
        assert any("3 nanowire planes" in x.message for x in diags)

    def test_d007_non_adjacent_planes(self):
        d = CrossbarDesign3D(
            "gap", plane_sizes=[2, 2, 2, 2], input_row=0, output_rows={"f": 1}
        )
        d.set_cell3(0, 0, 0, Lit("a", True))
        d.plane_labels[0][0] = "n"
        d.plane_labels[2][0] = "n"
        diags = [x for x in check_design(d) if x.code == "D007"]
        assert diags
        assert "non-adjacent" in diags[0].message


class TestLayeredCorruptions:
    def test_d002_broken_stitch(self, layered_c17):
        d = layered_c17
        vias = [
            (l, r, c)
            for l, r, c, lit in d.cells3d()
            if lit.is_constant() and lit.positive
        ]
        l, r, c = vias[0]
        rnode = d.plane_labels[h_plane(l)][r]
        # Point the bitline label at a fresh node: the via now joins two
        # different nodes, which is a labeling (D002) violation.
        old = d.plane_labels[v_plane(l)][c]
        d.plane_labels[v_plane(l)][c] = ("bogus", rnode)
        try:
            assert "D002" in codes(check_design(d))
        finally:
            d.plane_labels[v_plane(l)][c] = old

    def test_d006_duplicate_label_within_plane(self, layered_c17):
        d = layered_c17
        labels = d.plane_labels[0]
        wires = sorted(labels)
        assert len(wires) >= 2
        old = labels[wires[1]]
        labels[wires[1]] = labels[wires[0]]
        try:
            assert "D006" in codes(check_design(d))
        finally:
            labels[wires[1]] = old

    def test_d004_unreachable_cell(self, layered_c17):
        d = layered_c17
        # An isolated literal on the top layer, on wires nothing else
        # touches, can never carry input-to-output flow.
        top = d.num_layers - 1
        hp, vp = h_plane(top), v_plane(top)
        sizes = list(d.plane_sizes)
        grown = CrossbarDesign3D(
            d.name,
            plane_sizes=[
                s + 1 if p in (hp, vp) else s for p, s in enumerate(sizes)
            ],
            input_row=d.input_row,
            output_rows=dict(d.output_rows),
            constant_outputs=dict(d.constant_outputs),
        )
        for l, r, c, lit in d.cells3d():
            grown.set_cell3(l, r, c, lit)
        grown.set_cell3(top, sizes[hp], sizes[vp], Lit("a", True))
        diags = check_design(grown)
        assert "D004" in codes(diags)


class TestCheckFileDispatch:
    def test_v2_artifact_accepted_by_file_checker(self, layered_c17, tmp_path):
        from repro.check import check_design_file
        from repro.check.runner import run_check
        from repro.crossbar import design_to_json

        target = tmp_path / "c17_3d.json"
        target.write_text(design_to_json(layered_c17))
        assert findings(check_design_file(target)) == []
        # The runner's JSON dispatcher must accept the v2 format marker.
        assert findings(run_check([target])) == []
