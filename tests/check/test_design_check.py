"""Design analyzer: one corruption per rule code, plus the bound math."""

from __future__ import annotations

import json

import pytest

import repro.check.design as design_mod
from repro.check import (
    check_design,
    check_design_file,
    odd_cycle_packing,
    semiperimeter_lower_bound,
    validation_diagnostics,
)
from repro.crossbar.design import CrossbarDesign
from repro.crossbar.literals import OFF, ON, Lit
from repro.graphs.undirected import UGraph


def codes(diags):
    return sorted(d.code for d in diags)


def findings(diags):
    return [d for d in diags if d.is_finding]


class TestCleanDesign:
    def test_synthesized_design_has_no_findings(self, fresh_design):
        diags = check_design(fresh_design)
        assert findings(diags) == []

    def test_certificate_is_reported(self, fresh_design):
        (cert,) = [d for d in check_design(fresh_design) if d.code == "L001"]
        assert cert.data["s_lb"] <= cert.data["s_labeled"]
        assert cert.data["gap"] == cert.data["s_labeled"] - cert.data["s_lb"]
        assert cert.data["oct_lb"] == max(cert.data["lp_lb"], cert.data["packing_lb"])

    def test_c17_certificate_is_tight(self, fresh_design):
        # Method A is exact for gamma=1, and the packing bound recovers
        # the optimum on c17: the certificate proves the design optimal.
        (cert,) = [d for d in check_design(fresh_design) if d.code == "L001"]
        assert cert.data["gap"] == 0

    def test_check_design_file_round_trip(self, c17_payload, tmp_path):
        target = tmp_path / "c17.json"
        target.write_text(json.dumps(c17_payload))
        diags = check_design_file(target)
        assert findings(diags) == []
        assert all(d.span.file == str(target) for d in diags)


class TestCorruptions:
    def test_d002_missing_stitch(self, fresh_design):
        d = fresh_design
        stitches = [(r, c) for r, c, lit in d.cells() if lit.is_constant()]
        assert stitches, "synthesized c17 should contain at least one VH stitch"
        del d._cells[stitches[0]]
        found = [x for x in check_design(d) if x.code == "D002"]
        assert any("has no always-on stitch cell" in x.message for x in found)

    def test_d002_stitch_joining_two_nodes(self, fresh_design):
        d = fresh_design
        spot = next(
            (r, c)
            for r in range(d.num_rows)
            for c in range(d.num_cols)
            if d.cell(r, c) == OFF
            and d.row_labels.get(r) is not None
            and d.col_labels.get(c) is not None
            and d.row_labels[r] != d.col_labels[c]
        )
        d.set_cell(*spot, ON)
        found = [x for x in check_design(d) if x.code == "D002"]
        assert any("instead of stitching one VH node" in x.message for x in found)
        assert any(x.obj == f"cell ({spot[0]}, {spot[1]})" for x in found)

    def test_d003_output_on_input_row(self, fresh_design):
        d = fresh_design
        out = next(iter(d.output_rows))
        d.output_rows[out] = d.input_row
        found = [x for x in check_design(d) if x.code == "D003"]
        assert any(x.obj == out for x in found)

    def test_d003_disconnected_input_row(self):
        d = CrossbarDesign("t", 3, 1, 0, {"y": 1})
        d.set_cell(1, 0, Lit("a", True))  # output wired, input row empty
        found = [x for x in check_design(d) if x.code == "D003"]
        assert any("carries no memristors" in x.message for x in found)

    def test_d004_island_cells(self):
        d = CrossbarDesign("t", 4, 2, 0, {"y": 1})
        d.set_cell(0, 0, Lit("a", True))
        d.set_cell(1, 0, Lit("b", False))
        d.set_cell(2, 1, Lit("c", True))  # island: rows 2-3 / col 1
        d.set_cell(3, 1, Lit("d", True))
        found = [x for x in check_design(d) if x.code == "D004"]
        assert {x.obj for x in found} == {"cell (2, 1)", "cell (3, 1)"}

    def test_d005_spare_lines_are_info_only(self):
        d = CrossbarDesign("t", 3, 2, 0, {"y": 1})
        d.set_cell(0, 0, Lit("a", True))
        d.set_cell(1, 0, Lit("a", True))
        diags = check_design(d)
        spares = [x for x in diags if x.code == "D005"]
        assert {x.obj for x in spares} == {"row 2", "col 1"}
        assert findings(spares) == []

    def test_d006_duplicate_label(self, fresh_design):
        d = fresh_design
        r0, r1 = sorted(d.row_labels)[:2]
        d.row_labels[r1] = d.row_labels[r0]
        found = [x for x in check_design(d) if x.code == "D006"]
        assert len(found) == 1
        assert f"row {r0}" in found[0].message and f"row {r1}" in found[0].message

    def test_l002_via_forged_bound(self, fresh_design, monkeypatch):
        # No graph implied by a structurally valid design can force the
        # bound above its labeled semiperimeter (cells only join rows to
        # cols), so L002 is an invariant guard: forge the certificate.
        # The verifier re-derives the bound from the witnesses, so an
        # inflated claim is caught as a self-verification failure naming
        # the forged component — it cannot masquerade as a sound bound.
        real = semiperimeter_lower_bound

        def forged(graph):
            cert = dict(real(graph))
            cert["oct_lb"] = cert["n"]
            cert["s_lb"] = 2 * cert["n"]
            return cert

        monkeypatch.setattr(design_mod, "semiperimeter_lower_bound", forged)
        found = [x for x in check_design(fresh_design) if x.code == "L002"]
        assert len(found) == 1
        assert "failed self-verification" in found[0].message
        assert "oct_lb" in found[0].data["failed_components"]

    def test_l002_via_forged_witness_cycle(self, fresh_design, monkeypatch):
        # Tampering with a packing witness (not just the claimed number)
        # must also fail closed: the verifier re-walks every cycle.
        real = semiperimeter_lower_bound

        def forged(graph):
            cert = dict(real(graph))
            cert["packing"] = [["x", "y", "z"]] + list(cert["packing"])
            cert["packing_lb"] = len(cert["packing"])
            return cert

        monkeypatch.setattr(design_mod, "semiperimeter_lower_bound", forged)
        found = [x for x in check_design(fresh_design) if x.code == "L002"]
        assert len(found) == 1
        assert "packing" in found[0].data["failed_components"]


class TestLowerBoundMath:
    def triangle(self, tag=""):
        g = UGraph()
        g.add_edge(f"a{tag}", f"b{tag}")
        g.add_edge(f"b{tag}", f"c{tag}")
        g.add_edge(f"c{tag}", f"a{tag}")
        return g

    def test_packing_on_triangle(self):
        assert odd_cycle_packing(self.triangle()) == 1

    def test_packing_on_disjoint_triangles(self):
        g = self.triangle()
        for u, v in self.triangle("2").edges():
            g.add_edge(u, v)
        assert odd_cycle_packing(g) == 2

    def test_packing_on_bipartite_graph_is_zero(self):
        g = UGraph()
        for u, v in (("a", "b"), ("b", "c"), ("c", "d"), ("d", "a")):
            g.add_edge(u, v)
        assert odd_cycle_packing(g) == 0

    def test_bound_on_triangle(self):
        cert = semiperimeter_lower_bound(self.triangle())
        assert cert["n"] == 3
        assert cert["packing_lb"] == 1
        assert cert["s_lb"] == 3 + cert["oct_lb"] >= 4

    def test_bound_on_bipartite_graph_is_node_count(self):
        g = UGraph()
        g.add_edge("a", "b")
        g.add_edge("b", "c")
        cert = semiperimeter_lower_bound(g)
        assert cert["oct_lb"] == 0 and cert["s_lb"] == 3


class TestValidationDiagnostics:
    PASSING = {"ok": True, "checked": 32, "exhaustive": True}
    FAILING = {
        "ok": False,
        "checked": 7,
        "exhaustive": False,
        "counterexample": {"a": True},
        "mismatched_outputs": ["y"],
    }

    def test_passing_validation_is_silent(self):
        assert (
            validation_diagnostics(
                self.PASSING, design_name="d", circuit_name="c"
            )
            == []
        )

    def test_mismatch_is_v001(self):
        (d,) = validation_diagnostics(
            self.FAILING, design_name="d", circuit_name="c"
        )
        assert d.code == "V001"
        assert d.data["counterexample"] == {"a": True}
        assert d.data["mismatched_outputs"] == ["y"]

    def test_mismatch_under_faults_is_v002(self):
        (d,) = validation_diagnostics(
            self.FAILING, design_name="d", circuit_name="c", under_faults=True
        )
        assert d.code == "V002"
        assert "under the injected faults" in d.message
