"""The diagnostics model: catalog, rendering, JSON round trip, exits."""

from __future__ import annotations

import json

import pytest

from repro.check import (
    DIAGNOSTICS_SCHEMA,
    RULES,
    Diagnostic,
    Report,
    Severity,
    Span,
    diag,
)


class TestCatalog:
    def test_codes_are_namespaced(self):
        for code in RULES:
            assert code[0] in "NDLVC" and code[1:].isdigit()

    def test_rule_severities_are_cataloged(self):
        assert RULES["N001"].severity is Severity.ERROR
        assert RULES["N005"].severity is Severity.WARNING
        assert RULES["N007"].severity is Severity.WARNING
        assert RULES["D005"].severity is Severity.INFO
        assert RULES["L001"].severity is Severity.INFO
        assert RULES["L002"].severity is Severity.ERROR
        assert RULES["V001"].severity is Severity.ERROR
        assert RULES["C003"].severity is Severity.ERROR

    def test_diag_rejects_unknown_codes(self):
        with pytest.raises(KeyError):
            diag("X999", "no such rule")

    def test_diag_defaults_to_cataloged_severity(self):
        assert diag("N001", "m").severity is Severity.ERROR
        assert diag("N005", "m").severity is Severity.WARNING


class TestSpanAndRender:
    def test_span_str_forms(self):
        assert str(Span("a.pla", 3)) == "a.pla:3"
        assert str(Span("a.pla", None)) == "a.pla"
        assert str(Span(None, 3)) == "line 3"
        assert str(Span()) == "<unknown>"

    def test_render_line(self):
        d = diag("N002", "net 'p' is never driven", file="x.blif", line=10, obj="p")
        assert d.render() == "x.blif:10: p: error[N002] net 'p' is never driven"

    def test_render_without_span_uses_obj(self):
        d = diag("D002", "bad stitch", obj="cell (1, 2)")
        assert d.render().startswith("cell (1, 2): error[D002]")


class TestJsonRoundTrip:
    def test_as_dict_from_dict_round_trip(self):
        d = diag(
            "L001", "bound 12", file="d.json", line=None, obj="c17",
            s_lb=12, gap=0,
        )
        back = Diagnostic.from_dict(json.loads(json.dumps(d.as_dict())))
        assert back == d

    def test_data_omitted_when_empty(self):
        assert "data" not in diag("N001", "m").as_dict()

    def test_report_payload_schema(self):
        report = Report([diag("N001", "cycle")])
        payload = report.to_payload()
        assert payload["schema"] == DIAGNOSTICS_SCHEMA
        assert payload["ok"] is False
        assert payload["summary"]["error"] == 1
        assert payload["diagnostics"][0]["code"] == "N001"
        # render_json is exactly the payload.
        assert json.loads(report.render_json()) == payload


class TestReport:
    def test_info_is_not_a_finding(self):
        report = Report([diag("L001", "certificate"), diag("D005", "spare")])
        assert report.findings() == []
        assert report.exit_code == 0

    def test_warnings_and_errors_are_findings(self):
        report = Report([diag("N005", "unused"), diag("L001", "cert")])
        assert [d.code for d in report.findings()] == ["N005"]
        assert report.exit_code == 1

    def test_render_text_hides_info_unless_verbose(self):
        report = Report([diag("L001", "certificate here")])
        assert "certificate here" not in report.render_text()
        assert "certificate here" in report.render_text(verbose=True)
        assert "0 error(s), 0 warning(s), 1 info" in report.render_text()

    def test_by_code_and_counts(self):
        report = Report(
            [diag("N001", "a"), diag("N001", "b"), diag("N005", "c")]
        )
        assert len(report.by_code("N001")) == 2
        assert report.counts() == {"error": 2, "warning": 1, "info": 0}
