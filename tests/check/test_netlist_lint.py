"""Netlist linter: golden fixtures and one case per rule code."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.check import (
    lint_blif_text,
    lint_file,
    lint_netlist,
    lint_pla_text,
    lint_verilog_text,
)
from repro.circuits import Netlist
from repro.io import read_blif

FIXTURES = Path(__file__).parent / "fixtures"
EXAMPLES = Path(__file__).resolve().parents[2] / "examples" / "circuits"


def codes(diags):
    return sorted(d.code for d in diags)


def at(diags, code):
    found = [d for d in diags if d.code == code]
    assert found, f"expected a {code} diagnostic in {[d.render() for d in diags]}"
    return found


# -- golden fixtures --------------------------------------------------------------


class TestGoldenFixtures:
    def test_cycle_blif(self):
        diags = lint_file(FIXTURES / "cycle.blif")
        assert codes(diags) == ["N001", "N002"]
        (cycle,) = at(diags, "N001")
        assert cycle.span.line == 6
        assert "x -> y -> x" in cycle.message
        (undriven,) = at(diags, "N002")
        assert undriven.span.line == 10
        assert undriven.obj == "p"

    def test_bad_cubes_pla(self):
        diags = lint_file(FIXTURES / "bad_cubes.pla")
        assert codes(diags) == ["N005", "N007", "N008", "N010"]
        by_code = {d.code: d for d in diags}
        # N007: '11-' at line 10 is covered by '1--' at line 9.
        assert by_code["N007"].span.line == 10
        assert "'1--'" in by_code["N007"].message
        # N008: the fr-type on/off-set contradiction anchors on the on-set cube.
        assert by_code["N008"].span.line == 9
        assert "off-set cube '10-'" in by_code["N008"].message
        # N010: the all-don't-care-output cube.
        assert by_code["N010"].span.line == 12
        # N005: column c is '-' in every cube; anchored at the .ilb line.
        assert by_code["N005"].obj == "c"
        assert by_code["N005"].span.line == 6

    def test_undriven_verilog(self):
        diags = lint_file(FIXTURES / "undriven.v")
        (undriven,) = at(diags, "N002")
        assert undriven.span.line == 7
        assert undriven.obj == "w"

    def test_fixture_files_carry_their_own_path(self):
        for d in lint_file(FIXTURES / "cycle.blif"):
            assert d.span.file and d.span.file.endswith("cycle.blif")


# -- clean inputs ------------------------------------------------------------------


class TestCleanInputs:
    @pytest.mark.parametrize("name", ["c17.v", "maj3.pla", "parity4.blif"])
    def test_example_circuits_lint_clean(self, name):
        assert lint_file(EXAMPLES / name) == []

    def test_unknown_suffix_raises(self, tmp_path):
        target = tmp_path / "c.txt"
        target.write_text("hello")
        with pytest.raises(ValueError):
            lint_file(target)


# -- one case per remaining rule ---------------------------------------------------


class TestPerRule:
    def test_n000_unparseable(self):
        diags = lint_blif_text("this is not blif\n", source="g.blif")
        assert codes(diags) == ["N000"]
        assert diags[0].span.line == 1

    def test_n003_multiply_driven_and_n004_undriven_output(self):
        diags = lint_blif_text(
            ".model m\n.inputs a b\n.outputs y z\n"
            ".names a y\n1 1\n.names b y\n1 1\n.end\n",
            source="m.blif",
        )
        assert codes(diags) == ["N003", "N004"]
        by_code = {d.code: d for d in diags}
        assert by_code["N003"].span.line == 6
        assert "first driver at line 4" in by_code["N003"].message
        assert by_code["N004"].obj == "z"

    def test_n006_duplicate_declaration(self):
        diags = lint_blif_text(
            ".model m\n.inputs a a\n.outputs y\n.names a y\n1 1\n.end\n",
            source="d.blif",
        )
        assert codes(diags) == ["N006"]
        assert diags[0].obj == "a"

    def test_n005_unused_verilog_input(self):
        diags = lint_verilog_text(
            "module m (a, b, y);\n  input a, b;\n  output y;\n"
            "  buf g0 (y, a);\nendmodule\n",
            source="u.v",
        )
        assert codes(diags) == ["N005"]
        assert diags[0].obj == "b"

    def test_n009_constant_output(self):
        nl = Netlist("const")
        nl.add_input("a")
        nl.add_gate("t", "AND", ["a", "a"])
        nl.add_gate("y", "XOR", ["t", "a"])  # (a AND a) XOR a == 0
        nl.add_output("y")
        diags = lint_netlist(nl, file="<mem>")
        assert codes(diags) == ["N009"]
        assert "constant 0" in diags[0].message

    def test_fr_offset_cube_is_not_dead_logic(self):
        # In an fr-type cover a '0' output asserts the off-set: no N010.
        diags = lint_pla_text(
            ".i 2\n.o 1\n.type fr\n11 1\n00 0\n.e\n", source="fr.pla"
        )
        assert "N010" not in codes(diags)

    def test_plain_cover_zero_cube_is_dead_logic(self):
        diags = lint_pla_text(".i 2\n.o 1\n11 1\n00 0\n.e\n", source="f.pla")
        (dead,) = at(diags, "N010")
        assert dead.span.line == 4


# -- BLIF forward references (two-pass reader) ------------------------------------


class TestForwardReferences:
    def test_reader_accepts_forward_referenced_nets(self):
        nl = read_blif(
            ".model fwd\n.inputs a b\n.outputs y\n"
            ".names t1 t2 y\n11 1\n"
            ".names a t1\n1 1\n.names b t2\n1 1\n.end\n"
        )
        driven = {g.output for g in nl.gates}
        assert {"t1", "t2", "y"} <= driven  # helper gates may be added
        nl.check()

    def test_linter_is_silent_on_forward_references(self):
        diags = lint_blif_text(
            ".model fwd\n.inputs a\n.outputs y\n"
            ".names t y\n1 1\n.names a t\n1 1\n.end\n",
            source="fwd.blif",
        )
        assert diags == []
