"""Schema validation: every problem reported in one pass (D001)."""

from __future__ import annotations

import copy
import json

import pytest

from repro.check import (
    DESIGN_FORMAT,
    FAULTS_FORMAT,
    design_schema_diagnostics,
    fault_map_schema_diagnostics,
)
from repro.crossbar.serialize import design_from_json, fault_map_from_json


def valid_fault_payload():
    return {
        "format": FAULTS_FORMAT,
        "rows": 4,
        "cols": 4,
        "faults": [
            {"row": 0, "col": 1, "kind": "stuck_on"},
            {"row": 2, "col": 3, "kind": "stuck_off"},
        ],
    }


class TestDesignSchema:
    def test_valid_payload_is_clean(self, c17_payload):
        assert design_schema_diagnostics(c17_payload) == []

    def test_non_object_payload(self):
        diags = design_schema_diagnostics([1, 2, 3])
        assert [d.code for d in diags] == ["D001"]

    def test_all_problems_reported_in_one_pass(self):
        payload = {
            "format": "bogus/9",
            "name": 5,
            "rows": 0,
            "cols": "many",
            "input_row": "zero",
            "output_rows": [],
            "cells": "nope",
        }
        diags = design_schema_diagnostics(payload, file="bad.json")
        assert all(d.code == "D001" for d in diags)
        # One diagnostic per defect, not just the first.
        objs = {d.obj for d in diags}
        assert {"name", "rows", "cols", "input_row", "output_rows", "cells"} <= objs
        assert any("not a serialized crossbar design" in d.message for d in diags)
        assert all(d.span.file == "bad.json" for d in diags)

    def test_bool_is_not_an_integer(self, c17_payload):
        payload = copy.deepcopy(c17_payload)
        payload["rows"] = True
        assert any(d.obj == "rows" for d in design_schema_diagnostics(payload))

    def test_duplicate_cell(self, c17_payload):
        payload = copy.deepcopy(c17_payload)
        payload["cells"].append(dict(payload["cells"][0]))
        diags = design_schema_diagnostics(payload)
        assert len(diags) == 1 and "re-programs cell" in diags[0].message

    def test_out_of_range_coordinates_and_labels(self, c17_payload):
        payload = copy.deepcopy(c17_payload)
        payload["cells"][0]["row"] = payload["rows"] + 5
        payload["row_labels"]["99"] = "n99"
        diags = design_schema_diagnostics(payload)
        messages = " | ".join(d.message for d in diags)
        assert "outside the" in messages
        assert "row_labels key 99" in messages
        assert len(diags) == 2

    def test_sensed_and_constant_output_conflict(self, c17_payload):
        payload = copy.deepcopy(c17_payload)
        out = next(iter(payload["output_rows"]))
        payload["constant_outputs"] = {out: True}
        diags = design_schema_diagnostics(payload)
        assert any("both sensed and constant" in d.message for d in diags)


class TestFaultMapSchema:
    def test_valid_payload_is_clean(self):
        assert fault_map_schema_diagnostics(valid_fault_payload()) == []

    def test_unknown_kind_and_out_of_range(self):
        payload = valid_fault_payload()
        payload["faults"].append({"row": 9, "col": 0, "kind": "melted"})
        diags = fault_map_schema_diagnostics(payload)
        messages = " | ".join(d.message for d in diags)
        assert "unknown fault kind 'melted'" in messages
        assert "outside the 4x4 array" in messages

    def test_conflicting_duplicate_faults(self):
        payload = valid_fault_payload()
        payload["faults"].append({"row": 0, "col": 1, "kind": "stuck_off"})
        diags = fault_map_schema_diagnostics(payload)
        assert len(diags) == 1 and "conflicts with earlier fault" in diags[0].message

    def test_repeated_identical_fault_is_fine(self):
        payload = valid_fault_payload()
        payload["faults"].append(dict(payload["faults"][0]))
        assert fault_map_schema_diagnostics(payload) == []


class TestLoadersReportEverything:
    def test_design_loader_lists_all_problems(self, c17_payload):
        payload = copy.deepcopy(c17_payload)
        payload["name"] = 5
        payload["input_row"] = "zero"
        with pytest.raises(ValueError) as err:
            design_from_json(json.dumps(payload))
        assert "'name' must be a string" in str(err.value)
        assert "'input_row' must be an integer" in str(err.value)

    def test_fault_map_loader_lists_all_problems(self):
        payload = valid_fault_payload()
        payload["rows"] = 0
        payload["faults"][0]["kind"] = "melted"
        with pytest.raises(ValueError) as err:
            fault_map_from_json(json.dumps(payload))
        assert "'rows' must be a positive integer" in str(err.value)
        assert "unknown fault kind" in str(err.value)

    def test_valid_documents_still_load(self, c17_payload):
        design = design_from_json(json.dumps(c17_payload))
        assert design.name == c17_payload["name"]
        fmap = fault_map_from_json(json.dumps(valid_fault_payload()))
        assert len(fmap.faults) == 2
