"""Self-lint rules on synthetic snippets, plus the real source tree."""

from __future__ import annotations

import pytest

from repro.check import default_source_root, selflint_file, selflint_paths


@pytest.fixture
def lint(tmp_path):
    def run(source: str):
        target = tmp_path / "snippet.py"
        target.write_text(source)
        return selflint_file(target)

    return run


def codes(diags):
    return sorted(d.code for d in diags)


class TestC001Locks:
    def test_bare_acquire_is_flagged(self, lint):
        diags = lint("import threading\nlock = threading.Lock()\nlock.acquire()\n")
        assert codes(diags) == ["C001"]
        assert diags[0].span.line == 3

    def test_with_statement_is_fine(self, lint):
        assert lint("import threading\nlock = threading.Lock()\nwith lock:\n    pass\n") == []


class TestC002BareExcept:
    def test_bare_except_is_flagged(self, lint):
        diags = lint("try:\n    work()\nexcept:\n    handle()\n")
        assert codes(diags) == ["C002"]
        assert diags[0].span.line == 3

    def test_typed_except_is_fine(self, lint):
        assert lint("try:\n    work()\nexcept ValueError:\n    handle()\n") == []


class TestC003SwallowedIO:
    def test_swallowed_oserror(self, lint):
        diags = lint("try:\n    work()\nexcept OSError:\n    pass\n")
        assert codes(diags) == ["C003"]

    def test_swallowed_tuple_with_io_member(self, lint):
        diags = lint("try:\n    work()\nexcept (ValueError, ConnectionError):\n    pass\n")
        assert codes(diags) == ["C003"]

    def test_handled_oserror_is_fine(self, lint):
        assert lint("try:\n    work()\nexcept OSError as exc:\n    log(exc)\n") == []

    def test_swallowed_non_io_error_is_fine(self, lint):
        assert lint("try:\n    work()\nexcept KeyError:\n    pass\n") == []

    def test_allow_annotation_suppresses(self, lint):
        diags = lint(
            "try:\n    work()\n"
            "except OSError:  # check: allow C003 -- best-effort cleanup\n"
            "    pass\n"
        )
        assert diags == []

    def test_allow_annotation_is_per_code(self, lint):
        diags = lint(
            "try:\n    work()\nexcept OSError:  # check: allow C001\n    pass\n"
        )
        assert codes(diags) == ["C003"]


class TestC004ExitCodes:
    def test_sys_exit_3_is_flagged(self, lint):
        diags = lint("import sys\nsys.exit(3)\n")
        assert codes(diags) == ["C004"]

    def test_contract_codes_are_fine(self, lint):
        assert lint("import sys\nsys.exit(0)\nsys.exit(1)\nsys.exit(2)\n") == []

    def test_raise_system_exit_is_checked(self, lint):
        diags = lint("raise SystemExit(5)\n")
        assert codes(diags) == ["C004"]

    def test_non_constant_exit_is_not_guessed_at(self, lint):
        assert lint("import sys\nsys.exit(compute())\n") == []


class TestC005WallClock:
    def test_time_time_is_flagged(self, lint):
        diags = lint("import time\nstart = time.time()\n")
        assert codes(diags) == ["C005"]
        assert diags[0].span.line == 2
        assert "time.monotonic()" in diags[0].message

    def test_every_call_site_is_flagged(self, lint):
        diags = lint(
            "import time\nt0 = time.time()\nwork()\nprint(time.time() - t0)\n"
        )
        assert codes(diags) == ["C005", "C005"]

    def test_monotonic_is_fine(self, lint):
        assert lint("import time\nstart = time.monotonic()\n") == []

    def test_other_time_attributes_are_fine(self, lint):
        assert lint("import time\ntime.sleep(1)\nns = time.perf_counter()\n") == []

    def test_allow_annotation_suppresses(self, lint):
        diags = lint(
            "import time\nstamp = time.time()  # check: allow C005\n"
        )
        assert diags == []


class TestFiles:
    def test_syntax_error_is_n000(self, lint):
        diags = lint("def broken(:\n")
        assert codes(diags) == ["N000"]

    def test_repro_source_tree_is_clean(self):
        diags = selflint_paths([default_source_root()])
        assert diags == [], "\n".join(d.render() for d in diags)
