"""Property: ``repro check`` is silent on every Table-1 synthesized design.

Synthesis artifacts are the analyzer's null hypothesis: a faithful
COMPACT design must satisfy the VH-labeling, alignment, reachability and
lower-bound rules by construction, so any finding here is a bug in
either the synthesizer or the analyzer.  Runs the fast suite (the
Table-1 tier-1 circuits) through Method A at gamma=1.
"""

from __future__ import annotations

import pytest

from repro.bench.suites import suite
from repro.check import check_design
from repro.core.compact import Compact

FAST = suite("fast")


@pytest.mark.parametrize("bench", FAST, ids=[b.name for b in FAST])
def test_check_is_silent_on_synthesized_designs(bench):
    result = Compact(gamma=1.0, method="oct", time_limit=20).synthesize_netlist(
        bench.build()
    )
    diags = check_design(result.design)
    findings = [d for d in diags if d.is_finding]
    assert findings == [], "\n".join(d.render() for d in findings)
    # The certificate must be present and coherent for every design.
    (cert,) = [d for d in diags if d.code == "L001"]
    assert cert.data["s_lb"] <= result.design.semiperimeter
    assert cert.data["gap"] >= 0


@pytest.mark.parametrize("layers", [2, 3])
@pytest.mark.parametrize("bench", FAST, ids=[b.name for b in FAST])
def test_layered_certificate_holds_on_synthesized_designs(bench, layers):
    # Same null hypothesis, one dimension up: every 3D Table-1 design
    # must carry exactly one verified L003 certificate whose bound never
    # exceeds the achieved footprint semiperimeter.
    result = Compact(
        gamma=1.0, method="oct", time_limit=20, layers=layers
    ).synthesize_netlist(bench.build())
    diags = check_design(result.design)
    findings = [d for d in diags if d.is_finding]
    assert findings == [], "\n".join(d.render() for d in findings)
    (cert,) = [d for d in diags if d.code == "L003"]
    assert cert.data["layers"] == layers
    assert cert.data["s_lb"] <= cert.data["s_labeled"]
    assert cert.data["gap"] >= 0
