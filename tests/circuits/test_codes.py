"""Semantic tests for the coding-circuit generators."""

import pytest

from repro.circuits import (
    bcd_to_7seg,
    binary_to_gray,
    gray_to_binary,
    hamming74_decoder,
    hamming74_encoder,
)


def word(prefix, value, width):
    return {f"{prefix}{i}": bool((value >> i) & 1) for i in range(width)}


def to_int(out, prefix, width):
    return sum(int(out[f"{prefix}{i}"]) << i for i in range(width))


class TestHamming:
    def test_codewords_have_even_parity_checks(self):
        enc = hamming74_encoder()
        for d in range(16):
            cw = enc.evaluate(word("d", d, 4))
            # Parity groups must XOR to zero.
            assert not (cw["c0"] ^ cw["c2"] ^ cw["c4"] ^ cw["c6"])
            assert not (cw["c1"] ^ cw["c2"] ^ cw["c5"] ^ cw["c6"])
            assert not (cw["c3"] ^ cw["c4"] ^ cw["c5"] ^ cw["c6"])

    def test_roundtrip_without_errors(self):
        enc, dec = hamming74_encoder(), hamming74_decoder()
        for d in range(16):
            cw = enc.evaluate(word("d", d, 4))
            out = dec.evaluate({k: v for k, v in cw.items()})
            assert to_int(out, "q", 4) == d
            assert to_int(out, "s", 3) == 0  # zero syndrome

    def test_corrects_every_single_bit_error(self):
        enc, dec = hamming74_encoder(), hamming74_decoder()
        for d in range(16):
            cw = enc.evaluate(word("d", d, 4))
            for flip in range(7):
                corrupted = dict(cw)
                corrupted[f"c{flip}"] = not corrupted[f"c{flip}"]
                out = dec.evaluate(corrupted)
                assert to_int(out, "q", 4) == d, (d, flip)
                assert to_int(out, "s", 3) == flip + 1  # syndrome = position

    def test_distinct_codewords(self):
        enc = hamming74_encoder()
        seen = set()
        for d in range(16):
            cw = enc.evaluate(word("d", d, 4))
            seen.add(tuple(cw[f"c{i}"] for i in range(7)))
        assert len(seen) == 16


class TestGray:
    @pytest.mark.parametrize("n", [1, 3, 5])
    def test_adjacent_values_differ_in_one_bit(self, n):
        nl = binary_to_gray(n)
        prev = None
        for v in range(2**n):
            g = to_int(nl.evaluate(word("b", v, n)), "g", n)
            if prev is not None:
                assert bin(g ^ prev).count("1") == 1
            prev = g

    @pytest.mark.parametrize("n", [1, 3, 5])
    def test_converters_are_inverses(self, n):
        b2g, g2b = binary_to_gray(n), gray_to_binary(n)
        for v in range(2**n):
            g = b2g.evaluate(word("b", v, n))
            env = {f"g{i}": g[f"g{i}"] for i in range(n)}
            assert to_int(g2b.evaluate(env), "b", n) == v

    def test_rejects_zero_width(self):
        with pytest.raises(ValueError):
            binary_to_gray(0)
        with pytest.raises(ValueError):
            gray_to_binary(0)


class TestBcd7Seg:
    def test_known_digits(self):
        nl = bcd_to_7seg()
        out0 = nl.evaluate(word("b", 0, 4))
        # Digit 0 lights everything except the middle segment g.
        assert all(out0[f"seg_{s}"] for s in "abcdef")
        assert not out0["seg_g"]
        out8 = nl.evaluate(word("b", 8, 4))
        assert all(out8[f"seg_{s}"] for s in "abcdefg")
        out1 = nl.evaluate(word("b", 1, 4))
        assert out1["seg_b"] and out1["seg_c"]
        assert not out1["seg_a"]

    def test_blank_beyond_nine(self):
        nl = bcd_to_7seg()
        for v in range(10, 16):
            out = nl.evaluate(word("b", v, 4))
            assert not any(out.values()), v

    def test_digits_distinct(self):
        nl = bcd_to_7seg()
        patterns = set()
        for v in range(10):
            out = nl.evaluate(word("b", v, 4))
            patterns.add(tuple(out[f"seg_{s}"] for s in "abcdefg"))
        assert len(patterns) == 10


class TestCodesThroughCompact:
    """The new families synthesize into valid crossbars."""

    @pytest.mark.parametrize(
        "factory",
        [hamming74_encoder, hamming74_decoder,
         lambda: binary_to_gray(4), lambda: gray_to_binary(4), bcd_to_7seg],
    )
    def test_valid_designs(self, factory):
        from repro import Compact
        from repro.crossbar import validate_design

        nl = factory()
        res = Compact(gamma=0.5, time_limit=30).synthesize_netlist(nl)
        assert validate_design(res.design, nl.evaluate, nl.inputs).ok
