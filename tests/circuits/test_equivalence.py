"""Tests for the BDD-based combinational equivalence checker."""

import pytest

from repro.circuits import Netlist, c17, check_equivalence, optimize, random_netlist
from repro.io import read_blif, write_blif


class TestEquivalent:
    def test_identical_netlists(self, c17_netlist):
        assert check_equivalence(c17_netlist, c17())

    def test_after_optimization(self):
        for seed in range(5):
            nl = random_netlist(6, 30, 4, seed=seed)
            assert check_equivalence(nl, optimize(nl))

    def test_after_blif_round_trip(self, rca3):
        assert check_equivalence(rca3, read_blif(write_blif(rca3)))

    def test_structurally_different_same_function(self):
        a = Netlist("a", inputs=["x", "y"], outputs=["z"])
        a.add_gate("z", "NAND", ["x", "y"])
        b = Netlist("b", inputs=["x", "y"], outputs=["z"])
        b.add_gate("t", "AND", ["x", "y"])
        b.add_gate("z", "INV", ["t"])
        result = check_equivalence(a, b)
        assert result and bool(result)


class TestInequivalent:
    def test_counterexample_returned(self):
        a = Netlist("a", inputs=["x", "y"], outputs=["z"])
        a.add_gate("z", "AND", ["x", "y"])
        b = Netlist("b", inputs=["x", "y"], outputs=["z"])
        b.add_gate("z", "OR", ["x", "y"])
        result = check_equivalence(a, b)
        assert not result
        assert result.failing_output == "z"
        env = result.counterexample
        assert a.evaluate(env)["z"] != b.evaluate(env)["z"]

    def test_counterexample_is_total(self):
        a = Netlist("a", inputs=["x", "y", "unused"], outputs=["z"])
        a.add_gate("z", "BUF", ["x"])
        b = Netlist("b", inputs=["x", "y", "unused"], outputs=["z"])
        b.add_gate("z", "BUF", ["y"])
        result = check_equivalence(a, b)
        assert set(result.counterexample) == {"x", "y", "unused"}


class TestInterface:
    def test_mismatched_inputs_rejected(self):
        a = Netlist("a", inputs=["x"], outputs=["z"])
        a.add_gate("z", "BUF", ["x"])
        b = Netlist("b", inputs=["q"], outputs=["z"])
        b.add_gate("z", "BUF", ["q"])
        with pytest.raises(ValueError, match="input sets differ"):
            check_equivalence(a, b)

    def test_output_map(self):
        a = Netlist("a", inputs=["x", "y"], outputs=["p"])
        a.add_gate("p", "AND", ["x", "y"])
        b = Netlist("b", inputs=["x", "y"], outputs=["q"])
        b.add_gate("q", "AND", ["x", "y"])
        assert check_equivalence(a, b, output_map={"p": "q"})

    def test_unknown_output_rejected(self):
        a = Netlist("a", inputs=["x"], outputs=["z"])
        a.add_gate("z", "BUF", ["x"])
        with pytest.raises(ValueError):
            check_equivalence(a, a, output_map={"nope": "z"})
