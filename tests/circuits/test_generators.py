"""Semantic tests for the synthetic benchmark generators.

Every generator must produce a circuit whose behaviour matches the
mathematical object it claims to be (adders add, decoders decode...).
"""

import itertools
import random

import pytest

from repro.circuits import (
    alu_slice,
    array_multiplier,
    c17,
    comparator,
    decoder,
    i2c_control,
    int2float,
    majority_voter,
    mux_tree,
    parity_tree,
    priority_encoder,
    random_control,
    random_netlist,
    ripple_carry_adder,
    round_robin_arbiter,
    router_lookup,
)


def word(env_prefix, value, width):
    return {f"{env_prefix}{i}": bool((value >> i) & 1) for i in range(width)}


def to_int(out, prefix, width):
    return sum(int(out[f"{prefix}{i}"]) << i for i in range(width))


class TestC17:
    def test_structure(self):
        nl = c17()
        assert len(nl.inputs) == 5 and len(nl.outputs) == 2
        assert all(g.gate_type == "NAND" for g in nl.gates)

    def test_known_vector(self):
        nl = c17()
        out = nl.evaluate({"G1": 0, "G2": 0, "G3": 0, "G6": 0, "G7": 0})
        assert out == {"G22": False, "G23": False}


class TestAdder:
    @pytest.mark.parametrize("n", [1, 2, 4])
    def test_adds_exhaustively(self, n):
        nl = ripple_carry_adder(n)
        for a in range(2**n):
            for b in range(2**n):
                for cin in (0, 1):
                    env = word("a", a, n) | word("b", b, n) | {"cin": bool(cin)}
                    out = nl.evaluate(env)
                    total = to_int(out, "s", n) + (int(out["cout"]) << n)
                    assert total == a + b + cin

    def test_rejects_zero_width(self):
        with pytest.raises(ValueError):
            ripple_carry_adder(0)


class TestMultiplier:
    @pytest.mark.parametrize("n", [2, 3])
    def test_multiplies_exhaustively(self, n):
        nl = array_multiplier(n)
        for a in range(2**n):
            for b in range(2**n):
                env = word("a", a, n) | word("b", b, n)
                assert to_int(nl.evaluate(env), "p", 2 * n) == a * b


class TestComparator:
    @pytest.mark.parametrize("n", [1, 3])
    def test_compares_exhaustively(self, n):
        nl = comparator(n)
        for a in range(2**n):
            for b in range(2**n):
                out = nl.evaluate(word("a", a, n) | word("b", b, n))
                assert out == {"lt": a < b, "eq": a == b, "gt": a > b}


class TestDecoder:
    @pytest.mark.parametrize("n", [1, 3, 4])
    def test_one_hot(self, n):
        nl = decoder(n)
        for code in range(2**n):
            out = nl.evaluate(word("a", code, n))
            assert sum(out.values()) == 1
            assert out[f"d{code}"]

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            decoder(0)


class TestPriorityEncoder:
    @pytest.mark.parametrize("n", [2, 5, 8])
    def test_highest_priority_wins(self, n):
        nl = priority_encoder(n)
        width = (n - 1).bit_length()
        for v in range(2**n):
            out = nl.evaluate(word("r", v, n))
            if v == 0:
                assert not out["valid"]
            else:
                assert out["valid"]
                assert to_int(out, "y", width) == min(
                    i for i in range(n) if (v >> i) & 1
                )


class TestArbiter:
    def test_pointer_rotates_priority(self):
        nl = round_robin_arbiter(4)
        for ptr in range(4):
            for req in range(1, 16):
                env = word("r", req, 4) | word("p", ptr, 2)
                out = nl.evaluate(env)
                grants = [i for i in range(4) if out[f"gnt{i}"]]
                expected = next((ptr + d) % 4 for d in range(4) if (req >> ((ptr + d) % 4)) & 1)
                assert grants == [expected], (ptr, req)
                assert out["ack"]

    def test_no_request_no_grant(self):
        nl = round_robin_arbiter(4)
        out = nl.evaluate(word("r", 0, 4) | word("p", 0, 2))
        assert not any(out[f"gnt{i}"] for i in range(4))
        assert not out["ack"]

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            round_robin_arbiter(6)


class TestRouter:
    def test_longest_prefix_match_is_unique(self):
        nl = router_lookup(10, 6, seed=3)
        rng = random.Random(0)
        for _ in range(200):
            addr = rng.getrandbits(10)
            out = nl.evaluate(word("a", addr, 10))
            matches = [i for i in range(6) if out[f"m{i}"]]
            # Longest-prefix + index tie-break leaves exactly one winner
            # whenever any rule matches.
            assert out["hit"] == (len(matches) == 1)

    def test_deterministic_for_seed(self):
        a = router_lookup(8, 4, seed=9)
        b = router_lookup(8, 4, seed=9)
        env = word("a", 0b10110101, 8)
        assert a.evaluate(env) == b.evaluate(env)


class TestInt2Float:
    def test_exponent_is_leading_one_position(self):
        nl = int2float(11)
        for x in [0, 1, 2, 5, 64, 100, 1024, 2047]:
            out = nl.evaluate(word("x", x, 11))
            e = to_int(out, "e", 4)
            assert e == (x.bit_length() - 1 if x else 0)

    def test_mantissa_bits(self):
        nl = int2float(11)
        x = 0b11010000000
        out = nl.evaluate(word("x", x, 11))
        assert to_int(out, "f", 3) == 0b101

    def test_width_check(self):
        with pytest.raises(ValueError):
            int2float(20, exp_bits=3)


class TestMuxTree:
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_selects(self, k):
        nl = mux_tree(k)
        n = 2**k
        for sel in range(n):
            for data in (0, (1 << n) - 1, 0b1010101010 & ((1 << n) - 1)):
                env = word("d", data, n) | word("s", sel, k)
                assert nl.evaluate(env)["y"] == bool((data >> sel) & 1)


class TestParityAndVoter:
    @pytest.mark.parametrize("n", [2, 7, 9])
    def test_parity(self, n):
        nl = parity_tree(n)
        for v in range(2**min(n, 9)):
            out = nl.evaluate(word("x", v, n))
            assert out["par"] == (bin(v).count("1") % 2 == 1)

    def test_voter(self):
        nl = majority_voter(5)
        for v in range(32):
            out = nl.evaluate(word("v", v, 5))
            assert out["maj"] == (bin(v).count("1") >= 3)

    def test_voter_rejects_even(self):
        with pytest.raises(ValueError):
            majority_voter(4)


class TestSeededGenerators:
    def test_random_control_deterministic(self):
        a = random_control("x", 6, 4, 8, seed=5)
        b = random_control("x", 6, 4, 8, seed=5)
        env = {f"i{k}": bool(k % 2) for k in range(6)}
        assert a.evaluate(env) == b.evaluate(env)

    def test_random_netlist_checks(self):
        for seed in range(5):
            nl = random_netlist(6, 25, 4, seed=seed)
            nl.check()
            env = {name: False for name in nl.inputs}
            nl.evaluate(env)

    def test_i2c_outputs_present(self):
        nl = i2c_control()
        assert set(nl.outputs) >= {"start", "stop", "wr", "acko"}

    def test_alu_add_mode(self):
        nl = alu_slice(3)
        for a in range(8):
            for b in range(8):
                env = word("a", a, 3) | word("b", b, 3) | {"op0": False, "op1": False}
                out = nl.evaluate(env)
                assert to_int(out, "y", 3) + (int(out["cout"]) << 3) == a + b

    def test_alu_logic_modes(self):
        nl = alu_slice(2)
        for a in range(4):
            for b in range(4):
                base = word("a", a, 2) | word("b", b, 2)
                assert to_int(nl.evaluate(base | {"op0": True, "op1": False}), "y", 2) == (a & b)
                assert to_int(nl.evaluate(base | {"op0": False, "op1": True}), "y", 2) == (a | b)
                assert to_int(nl.evaluate(base | {"op0": True, "op1": True}), "y", 2) == (a ^ b)
