"""Unit tests for the netlist data structure."""

import pytest

from repro.circuits import Gate, Netlist, NetlistError


class TestGate:
    def test_unknown_type_rejected(self):
        with pytest.raises(NetlistError):
            Gate("o", "FROB", ("a",))

    def test_inv_arity(self):
        with pytest.raises(NetlistError):
            Gate("o", "INV", ("a", "b"))

    def test_mux_arity(self):
        with pytest.raises(NetlistError):
            Gate("o", "MUX", ("s", "a"))

    def test_maj_needs_odd_fanin(self):
        with pytest.raises(NetlistError):
            Gate("o", "MAJ", ("a", "b", "c", "d"))

    def test_const_takes_no_inputs(self):
        with pytest.raises(NetlistError):
            Gate("o", "CONST1", ("a",))

    @pytest.mark.parametrize(
        "gate_type,inputs,expected",
        [
            ("AND", (1, 1), True),
            ("AND", (1, 0), False),
            ("OR", (0, 0), False),
            ("OR", (0, 1), True),
            ("NAND", (1, 1), False),
            ("NOR", (0, 0), True),
            ("XOR", (1, 1, 1), True),
            ("XNOR", (1, 1), True),
            ("INV", (1,), False),
            ("BUF", (0,), False),
            ("MAJ", (1, 1, 0), True),
            ("MAJ", (1, 0, 0), False),
        ],
    )
    def test_evaluate(self, gate_type, inputs, expected):
        names = tuple(f"i{k}" for k in range(len(inputs)))
        gate = Gate("o", gate_type, names)
        values = dict(zip(names, map(bool, inputs)))
        assert gate.evaluate(values) is expected

    def test_mux_selects(self):
        gate = Gate("o", "MUX", ("s", "a", "b"))
        assert gate.evaluate({"s": True, "a": True, "b": False})
        assert not gate.evaluate({"s": False, "a": True, "b": False})

    def test_expr_matches_evaluate(self):
        import itertools

        from repro.expr import Var

        for gtype, arity in [("AND", 3), ("NOR", 2), ("XOR", 3), ("MAJ", 3), ("MUX", 3)]:
            names = tuple(f"i{k}" for k in range(arity))
            gate = Gate("o", gtype, names)
            expr = gate.expr([Var(n) for n in names])
            for bits in itertools.product([False, True], repeat=arity):
                env = dict(zip(names, bits))
                assert expr.evaluate(env) == gate.evaluate(env), (gtype, env)


class TestNetlistConstruction:
    def test_duplicate_driver_rejected(self):
        nl = Netlist("t", inputs=["a"])
        nl.add_gate("x", "INV", ["a"])
        with pytest.raises(NetlistError, match="already driven"):
            nl.add_gate("x", "BUF", ["a"])

    def test_driving_an_input_rejected(self):
        nl = Netlist("t", inputs=["a"])
        with pytest.raises(NetlistError, match="primary input"):
            nl.add_gate("a", "INV", ["a"])

    def test_duplicate_input_rejected(self):
        nl = Netlist("t", inputs=["a"])
        with pytest.raises(NetlistError):
            nl.add_input("a")

    def test_undriven_output_detected(self):
        nl = Netlist("t", inputs=["a"], outputs=["z"])
        with pytest.raises(NetlistError, match="not driven"):
            nl.check()

    def test_undriven_gate_input_detected(self):
        nl = Netlist("t", inputs=["a"], outputs=["z"])
        nl.add_gate("z", "AND", ["a", "ghost"])
        with pytest.raises(NetlistError, match="undriven net"):
            nl.check()

    def test_cycle_detected(self):
        nl = Netlist("t", inputs=["a"], outputs=["x"])
        nl.add_gate("x", "AND", ["a", "y"])
        nl.add_gate("y", "BUF", ["x"])
        with pytest.raises(NetlistError, match="cycle"):
            nl.topological_gates()

    def test_fresh_net_unique(self):
        nl = Netlist("t", inputs=["n0"])
        nl.add_gate("n1", "INV", ["n0"])
        fresh = nl.fresh_net()
        assert fresh not in ("n0", "n1")

    def test_output_can_be_an_input(self):
        nl = Netlist("t", inputs=["a"], outputs=["a"])
        nl.check()
        assert nl.evaluate({"a": True}) == {"a": True}


class TestNetlistSemantics:
    def test_evaluate_requires_all_inputs(self):
        nl = Netlist("t", inputs=["a", "b"], outputs=["z"])
        nl.add_gate("z", "AND", ["a", "b"])
        with pytest.raises(KeyError):
            nl.evaluate({"a": True})

    def test_topological_order_respects_dependencies(self, c17_netlist):
        seen = set(c17_netlist.inputs)
        for gate in c17_netlist.topological_gates():
            assert all(i in seen for i in gate.inputs)
            seen.add(gate.output)

    def test_output_expressions_match_simulation(self, c17_netlist):
        from tests.conftest import all_envs

        exprs = c17_netlist.output_expressions()
        for env in all_envs(c17_netlist.inputs):
            sim = c17_netlist.evaluate(env)
            for out, e in exprs.items():
                assert e.evaluate(env) == sim[out]

    def test_stats(self, c17_netlist):
        stats = c17_netlist.stats()
        assert stats == {"inputs": 5, "outputs": 2, "gates": 6, "depth": 3}

    def test_nets_listing(self):
        nl = Netlist("t", inputs=["a"])
        nl.add_gate("x", "INV", ["a"])
        assert nl.nets() == ["a", "x"]

    def test_driver_lookup(self):
        nl = Netlist("t", inputs=["a"])
        nl.add_gate("x", "INV", ["a"])
        assert nl.driver("x").gate_type == "INV"
        assert nl.driver("a") is None
