"""Tests for the netlist optimization passes."""

import pytest

from repro.circuits import Netlist, c17, random_netlist
from repro.circuits.optimize import (
    optimize,
    propagate_constants,
    remove_dead,
    strash,
    sweep_buffers,
)
from tests.conftest import all_envs


def assert_equivalent(a: Netlist, b: Netlist):
    for env in all_envs(a.inputs):
        assert a.evaluate(env) == b.evaluate(env), env


class TestSweepBuffers:
    def test_buffer_chain_collapsed(self):
        nl = Netlist("t", inputs=["a"], outputs=["z"])
        nl.add_gate("b1", "BUF", ["a"])
        nl.add_gate("b2", "BUF", ["b1"])
        nl.add_gate("z", "INV", ["b2"])
        out = sweep_buffers(nl)
        assert out.num_gates() == 1
        assert_equivalent(nl, out)

    def test_output_buffer_kept(self):
        nl = Netlist("t", inputs=["a"], outputs=["z"])
        nl.add_gate("z", "BUF", ["a"])
        out = sweep_buffers(nl)
        assert out.evaluate({"a": True})["z"] is True


class TestPropagateConstants:
    def test_and_with_zero(self):
        nl = Netlist("t", inputs=["a"], outputs=["z"])
        nl.add_gate("zero", "CONST0", [])
        nl.add_gate("z", "AND", ["a", "zero"])
        out = optimize(nl)
        assert_equivalent(nl, out)
        assert out.driver("z").gate_type == "CONST0"

    def test_or_identity_removed(self):
        nl = Netlist("t", inputs=["a", "b"], outputs=["z"])
        nl.add_gate("zero", "CONST0", [])
        nl.add_gate("z", "OR", ["a", "zero", "b"])
        out = optimize(nl)
        assert_equivalent(nl, out)
        assert all(g.gate_type != "CONST0" for g in out.gates)

    def test_xor_constant_parity(self):
        nl = Netlist("t", inputs=["a"], outputs=["z"])
        nl.add_gate("one", "CONST1", [])
        nl.add_gate("z", "XOR", ["a", "one"])
        out = optimize(nl)
        assert_equivalent(nl, out)
        assert out.driver("z").gate_type == "INV"

    def test_mux_constant_select(self):
        nl = Netlist("t", inputs=["a", "b"], outputs=["z"])
        nl.add_gate("one", "CONST1", [])
        nl.add_gate("z", "MUX", ["one", "a", "b"])
        out = optimize(nl)
        assert_equivalent(nl, out)

    def test_constant_output_materialised(self):
        nl = Netlist("t", inputs=["a"], outputs=["z"])
        nl.add_gate("na", "INV", ["a"])
        nl.add_gate("z", "AND", ["a", "na"])
        # a & ~a is not folded structurally (needs BDDs), but a truly
        # constant cone is:
        nl2 = Netlist("t2", inputs=["a"], outputs=["z"])
        nl2.add_gate("one", "CONST1", [])
        nl2.add_gate("none", "INV", ["one"])
        nl2.add_gate("z", "OR", ["none", "none"])
        out = optimize(nl2)
        assert out.evaluate({"a": False})["z"] is False


class TestStrash:
    def test_duplicate_gates_merged(self):
        nl = Netlist("t", inputs=["a", "b"], outputs=["z"])
        nl.add_gate("x1", "AND", ["a", "b"])
        nl.add_gate("x2", "AND", ["b", "a"])  # symmetric duplicate
        nl.add_gate("z", "OR", ["x1", "x2"])
        out = optimize(nl)
        assert_equivalent(nl, out)
        assert out.num_gates() < nl.num_gates()

    def test_asymmetric_gates_not_merged_across_orders(self):
        nl = Netlist("t", inputs=["s", "a", "b"], outputs=["z", "w"])
        nl.add_gate("z", "MUX", ["s", "a", "b"])
        nl.add_gate("w", "MUX", ["s", "b", "a"])
        out = optimize(nl)
        assert_equivalent(nl, out)


class TestRemoveDead:
    def test_dead_cone_dropped(self):
        nl = Netlist("t", inputs=["a", "b"], outputs=["z"])
        nl.add_gate("z", "INV", ["a"])
        nl.add_gate("dead1", "AND", ["a", "b"])
        nl.add_gate("dead2", "OR", ["dead1", "b"])
        out = remove_dead(nl)
        assert out.num_gates() == 1
        assert_equivalent(nl, out)


class TestOptimizeEndToEnd:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_netlists_preserved(self, seed):
        nl = random_netlist(6, 30, 4, seed=seed)
        out = optimize(nl)
        out.check()
        assert_equivalent(nl, out)
        assert out.num_gates() <= nl.num_gates()

    def test_c17_unchanged_semantics(self, c17_netlist):
        out = optimize(c17_netlist)
        assert_equivalent(c17_netlist, out)

    def test_optimized_netlist_synthesizes(self):
        from repro import Compact
        from repro.crossbar import validate_design

        nl = random_netlist(5, 25, 3, seed=42)
        opt = optimize(nl)
        res = Compact(gamma=0.5).synthesize_netlist(opt)
        assert validate_design(res.design, nl.evaluate, nl.inputs).ok

    def test_sbdd_identical_after_optimize(self):
        """Optimization must not change the BDD (canonical form)."""
        from repro.bdd import build_sbdd, static_order

        nl = random_netlist(6, 25, 3, seed=77)
        opt = optimize(nl)
        order = static_order(nl)
        a = build_sbdd(nl, order=order)
        b = build_sbdd(opt, order=order)
        assert a.node_count() == b.node_count()
