"""Shared fixtures for the test suite."""

from __future__ import annotations

import itertools

import pytest

from repro.circuits import (
    c17,
    decoder,
    priority_encoder,
    random_netlist,
    ripple_carry_adder,
)


@pytest.fixture
def c17_netlist():
    return c17()


@pytest.fixture
def rca3():
    return ripple_carry_adder(3)


@pytest.fixture
def dec3():
    return decoder(3)


@pytest.fixture
def priority5():
    return priority_encoder(5)


@pytest.fixture(params=[1, 2, 3, 4])
def small_random_netlist(request):
    return random_netlist(5, 18, 3, seed=request.param)


def assert_netlists_equivalent(a, b, input_map=None):
    """Exhaustively compare two netlists (same input names by default)."""
    assert set(a.inputs) == set(b.inputs if input_map is None else input_map)
    for bits in itertools.product([False, True], repeat=len(a.inputs)):
        env = dict(zip(a.inputs, bits))
        assert a.evaluate(env) == b.evaluate(env), env


def all_envs(names):
    for bits in itertools.product([False, True], repeat=len(names)):
        yield dict(zip(names, bits))
