"""End-to-end tests for the Compact facade."""

import pytest

from repro import Compact
from repro.circuits import c17, decoder, priority_encoder, random_netlist
from repro.crossbar import measure, validate_design
from repro.expr import parse


class TestConfiguration:
    def test_bad_method_rejected(self):
        with pytest.raises(ValueError):
            Compact(method="quantum")

    def test_bad_gamma_rejected(self):
        with pytest.raises(ValueError):
            Compact(gamma=2.0)

    def test_defaults(self):
        c = Compact()
        assert c.gamma == 0.5 and c.alignment and c.method == "auto"


class TestSynthesisEntryPoints:
    def test_netlist_entry(self, c17_netlist):
        res = Compact().synthesize_netlist(c17_netlist)
        assert validate_design(res.design, c17_netlist.evaluate, c17_netlist.inputs).ok
        assert "bdd" in res.times and "labeling" in res.times
        assert res.synthesis_time > 0

    def test_expr_entry_single(self):
        e = parse("(a & b) | ~c")
        res = Compact().synthesize_expr(e, name="f")
        rep = validate_design(res.design, lambda env: {"f": e.evaluate(env)}, ["a", "b", "c"])
        assert rep.ok

    def test_expr_entry_multi(self):
        exprs = {"f": parse("a & b"), "g": parse("a ^ b")}
        res = Compact().synthesize_expr(exprs)
        rep = validate_design(
            res.design,
            lambda env: {k: x.evaluate(env) for k, x in exprs.items()},
            ["a", "b"],
        )
        assert rep.ok

    def test_sbdd_entry(self, dec3):
        from repro.bdd import build_sbdd

        res = Compact().synthesize_sbdd(build_sbdd(dec3))
        assert validate_design(res.design, dec3.evaluate, dec3.inputs).ok

    def test_bdd_graph_entry(self, priority5):
        from repro.baselines import merged_robdd_graph

        bg = merged_robdd_graph(priority5)
        design, labeling, times = Compact().synthesize_bdd_graph(bg, name="p5")
        assert validate_design(design, priority5.evaluate, priority5.inputs).ok
        assert labeling.is_valid(bg)


class TestMethodsAgree:
    @pytest.mark.parametrize("method", ["auto", "mip", "oct", "heuristic"])
    def test_all_methods_produce_valid_designs(self, method, rca3):
        res = Compact(gamma=1.0, method=method).synthesize_netlist(rca3)
        assert validate_design(res.design, rca3.evaluate, rca3.inputs).ok

    def test_oct_equals_mip_semiperimeter_when_exact(self, c17_netlist):
        oct_res = Compact(gamma=1.0, method="oct").synthesize_netlist(c17_netlist)
        mip_res = Compact(gamma=1.0, method="mip").synthesize_netlist(c17_netlist)
        if oct_res.labeling.meta.get("optimal"):
            assert oct_res.design.semiperimeter == mip_res.design.semiperimeter

    def test_heuristic_never_beats_exact(self, priority5):
        heur = Compact(gamma=1.0, method="heuristic").synthesize_netlist(priority5)
        exact = Compact(gamma=1.0, method="mip").synthesize_netlist(priority5)
        assert heur.design.semiperimeter >= exact.design.semiperimeter


class TestPaperProperties:
    def test_semiperimeter_close_to_n(self):
        """The paper's headline: S ~ 1.11 n for COMPACT vs ~2n for prior."""
        for factory in (lambda: decoder(4), lambda: priority_encoder(8)):
            nl = factory()
            res = Compact(gamma=0.5).synthesize_netlist(nl)
            n = res.bdd_graph.num_nodes
            assert n <= res.design.semiperimeter <= 1.35 * n

    def test_gamma_half_at_most_gamma_one_dimension(self, c17_netlist):
        d_half = Compact(gamma=0.5).synthesize_netlist(c17_netlist).design.max_dimension
        d_one = Compact(gamma=1.0).synthesize_netlist(c17_netlist).design.max_dimension
        assert d_half <= d_one

    @pytest.mark.parametrize("seed", range(4))
    def test_random_netlists_full_pipeline(self, seed):
        nl = random_netlist(6, 25, 4, seed=seed)
        res = Compact(gamma=0.5).synthesize_netlist(nl)
        assert validate_design(res.design, nl.evaluate, nl.inputs).ok
        metrics = measure(res.design)
        # Constant-false outputs add one physical row beyond the labeling.
        extra = 1 if any(
            v is False for v in res.bdd_graph.constant_outputs.values()
        ) else 0
        assert metrics.semiperimeter == res.labeling.semiperimeter + extra
        assert metrics.area == res.design.num_rows * res.design.num_cols
