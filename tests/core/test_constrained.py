"""Tests for row/column-constrained synthesis (Section III extension)."""

import pytest

from repro.bdd import build_sbdd
from repro.core import (
    ConstraintInfeasibleError,
    label_constrained,
    label_weighted,
    map_to_crossbar,
    preprocess,
)
from repro.crossbar import validate_design


@pytest.fixture
def c17_graph(c17_netlist):
    return preprocess(build_sbdd(c17_netlist))


class TestConstrainedLabeling:
    def test_budgets_respected(self, c17_graph):
        free = label_weighted(c17_graph, gamma=0.5)
        lab = label_constrained(
            c17_graph, max_rows=free.rows, max_cols=free.cols
        )
        assert lab.rows <= free.rows
        assert lab.cols <= free.cols
        lab.validate(c17_graph)

    def test_tight_row_budget_changes_shape(self, c17_graph):
        free = label_weighted(c17_graph, gamma=1.0, alignment=True)
        # Demand strictly fewer rows than the unconstrained optimum uses.
        if free.rows > free.cols:
            lab = label_constrained(c17_graph, max_rows=free.rows - 1)
            assert lab.rows <= free.rows - 1
            lab.validate(c17_graph)

    def test_infeasible_raises(self, c17_graph):
        n_ports = len(c17_graph.port_nodes())
        with pytest.raises(ConstraintInfeasibleError):
            # Fewer rows than ports: alignment makes this impossible.
            label_constrained(c17_graph, max_rows=n_ports - 1)

    def test_zero_cols_infeasible_for_nontrivial_graph(self, c17_graph):
        with pytest.raises(ConstraintInfeasibleError):
            label_constrained(c17_graph, max_cols=0)

    def test_negative_budget_rejected(self, c17_graph):
        with pytest.raises(ValueError):
            label_constrained(c17_graph, max_rows=-1)

    def test_design_still_correct(self, c17_netlist, c17_graph):
        free = label_weighted(c17_graph, gamma=0.5)
        lab = label_constrained(
            c17_graph, max_rows=free.rows + 2, max_cols=free.cols + 2
        )
        design = map_to_crossbar(c17_graph, lab, name="c17-box")
        assert validate_design(design, c17_netlist.evaluate, c17_netlist.inputs).ok

    def test_metadata(self, c17_graph):
        lab = label_constrained(c17_graph, max_rows=50, max_cols=50)
        assert lab.meta["method"] == "constrained"
        assert lab.meta["max_rows"] == 50
