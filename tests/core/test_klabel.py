"""Tests for K-layer labeling (the FLOW-3D plane-assignment stage)."""

import pytest

from repro.bdd import build_sbdd, sbdd_from_exprs
from repro.circuits import c17, majority_voter, parity_tree
from repro.core import (
    Label,
    KLabel,
    KLabeling,
    assign_planes,
    label_weighted,
    lift_labeling,
    preprocess,
)
from repro.core.klabel import MILP_NODE_LIMIT, _zigzag_fold, stitch_lower_bound
from repro.core.labeling import LabelingError
from repro.expr import parse


def labeled_graph(exprs=None, netlist=None, gamma=0.5):
    if netlist is not None:
        sbdd = build_sbdd(netlist)
    else:
        sbdd = sbdd_from_exprs({k: parse(v) for k, v in exprs.items()})
    bg = preprocess(sbdd)
    return bg, label_weighted(bg, gamma=gamma, alignment=True)


class TestKLabel:
    def test_planes_h(self):
        assert KLabel(Label.H, 0).planes == (0,)
        assert KLabel(Label.H, 2).planes == (4,)

    def test_planes_v(self):
        assert KLabel(Label.V, 0).planes == (1,)
        assert KLabel(Label.V, 1).planes == (3,)

    def test_planes_vh(self):
        assert KLabel(Label.VH, 0).planes == (0, 1)
        assert KLabel(Label.VH, 2).planes == (2, 3)

    def test_stitch_layer(self):
        assert KLabel(Label.VH, 3).stitch_layer == 3
        assert KLabel(Label.H, 1).stitch_layer is None

    def test_has_plane0(self):
        assert KLabel(Label.H, 0).has_plane0()
        assert KLabel(Label.VH, 0).has_plane0()
        assert not KLabel(Label.V, 0).has_plane0()
        assert not KLabel(Label.VH, 1).has_plane0()

    def test_compatible_is_plane_adjacency(self):
        assert KLabel(Label.H, 0).compatible(KLabel(Label.V, 0))
        assert KLabel(Label.V, 0).compatible(KLabel(Label.H, 1))
        assert not KLabel(Label.H, 0).compatible(KLabel(Label.H, 1))
        assert not KLabel(Label.H, 0).compatible(KLabel(Label.V, 1))
        assert KLabel(Label.VH, 1).compatible(KLabel(Label.H, 0))

    def test_negative_layer_rejected(self):
        with pytest.raises(ValueError):
            KLabel(Label.H, -1)

    def test_str(self):
        assert str(KLabel(Label.VH, 0)) == "VH@0"
        assert str(KLabel(Label.V, 2)) == "V@2"


class TestLift:
    def test_lift_matches_planar_dimensions(self):
        bg, lab = labeled_graph(netlist=c17())
        kl = lift_labeling(lab)
        assert kl.num_layers == 1
        assert (kl.rows, kl.cols) == (lab.rows, lab.cols)
        assert kl.semiperimeter == lab.semiperimeter
        assert kl.vh_count == lab.vh_count
        kl.validate(bg, alignment=True)

    def test_lift_rejects_bad_layer_count(self):
        _, lab = labeled_graph(exprs={"f": "a & b"})
        with pytest.raises(ValueError):
            lift_labeling(lab, num_layers=0)


class TestAssignPlanes:
    def test_layers1_is_the_lift(self):
        bg, lab = labeled_graph(netlist=c17())
        kl = assign_planes(bg, lab, 1)
        assert kl.meta["plane_method"] == "lift"
        assert kl.meta["plane_optimal"] is True
        assert kl.labels == lift_labeling(lab).labels

    def test_layers1_keeps_stage1_optimality(self):
        bg, lab = labeled_graph(netlist=c17())
        kl = assign_planes(bg, lab, 1)
        assert kl.meta["optimal"] == bool(lab.meta.get("optimal"))

    @pytest.mark.parametrize("num_layers", [2, 3, 4])
    def test_valid_and_never_worse_than_planar(self, num_layers):
        for netlist in (c17(), majority_voter(9), parity_tree(8)):
            bg, lab = labeled_graph(netlist=netlist)
            kl = assign_planes(bg, lab, num_layers)
            kl.validate(bg, alignment=True)
            assert kl.semiperimeter <= lab.semiperimeter
            assert kl.num_layers == num_layers

    def test_k2_joint_optimality_is_certificate_gated(self):
        # Joint optimality may only be claimed when the achieved
        # objective meets the certified layered bound.  On c17 at K=2
        # the achieved S (11) sits above the certified floor (8), so
        # the claim must stay False even though the plane MILP proved
        # its stage optimal.
        bg, lab = labeled_graph(netlist=c17())
        kl = assign_planes(bg, lab, 2)
        assert kl.meta["optimal"] is False
        assert kl.meta["num_layers"] == 2
        assert "plane_seconds" in kl.meta
        assert kl.meta["certified_gap"] == kl.semiperimeter - kl.meta["certified_s_lb"]
        assert kl.meta["certified_gap"] >= 0
        assert kl.meta["plane_method"].split("+")[0] in ("fold", "milp")

    def test_heuristic_method_skips_the_milp(self):
        bg, lab = labeled_graph(netlist=c17())
        kl = assign_planes(bg, lab, 2, method="heuristic")
        kl.validate(bg, alignment=True)
        # No MILP ran, but the fold may still earn a capacity
        # certificate after the fact.
        assert kl.meta["plane_method"].startswith("fold")
        assert "milp" not in kl.meta["plane_method"]

    def test_stitch_set_is_preserved(self):
        bg, lab = labeled_graph(netlist=majority_voter(5))
        kl = assign_planes(bg, lab, 3)
        assert kl.vh_count == lab.vh_count
        for v, planar in lab.labels.items():
            is_vh = planar is Label.VH
            assert (kl.labels[v].orientation is Label.VH) == is_vh

    def test_ports_stay_on_plane0(self):
        bg, lab = labeled_graph(netlist=c17())
        kl = assign_planes(bg, lab, 3)
        for port in bg.port_nodes():
            assert kl.labels[port].has_plane0()

    def test_rejects_bad_layer_count(self):
        bg, lab = labeled_graph(exprs={"f": "a & b"})
        with pytest.raises(ValueError):
            assign_planes(bg, lab, 0)

    def test_large_graph_uses_fold_only(self, monkeypatch):
        import repro.core.klabel as klabel_mod

        bg, lab = labeled_graph(netlist=majority_voter(9))
        monkeypatch.setattr(klabel_mod, "MILP_NODE_LIMIT", 1)
        kl = assign_planes(bg, lab, 2)
        kl.validate(bg, alignment=True)
        assert kl.meta["plane_method"].startswith("fold")
        assert "milp" not in kl.meta["plane_method"]

    def test_rejects_unknown_plane_method(self):
        bg, lab = labeled_graph(exprs={"f": "a & b"})
        with pytest.raises(ValueError, match="plane_method"):
            assign_planes(bg, lab, 2, plane_method="simplex")

    def test_decomposed_milp_matches_monolithic_on_c17(self):
        bg, lab = labeled_graph(netlist=c17())
        mono = assign_planes(bg, lab, 2, plane_method="milp")
        dec = assign_planes(bg, lab, 2, plane_method="decomposed-milp")
        dec.validate(bg, alignment=True)
        assert dec.semiperimeter == mono.semiperimeter
        assert "decomposed-milp" in dec.meta["plane_method"]


class TestDecomposedMilpAboveTheGate:
    """Circuits past the monolithic node gate still get exact plane MILPs."""

    @pytest.mark.parametrize("name", ["cavlc_like", "router24"])
    def test_decomposed_is_exact_above_milp_node_limit(self, name):
        from repro.bench.suites import circuit

        bg = preprocess(build_sbdd(circuit(name)))
        assert len(bg.graph) > MILP_NODE_LIMIT
        # Stage-1 quality is irrelevant here (a time limit keeps the
        # test fast); the property under test is that the kernelized
        # per-component MILPs reproduce the monolithic optimum.
        lab = label_weighted(bg, gamma=0.5, alignment=True, time_limit=5)
        dec = assign_planes(bg, lab, 3, plane_method="decomposed-milp")
        mono = assign_planes(bg, lab, 3, plane_method="milp")
        dec.validate(bg, alignment=True)
        assert dec.semiperimeter == mono.semiperimeter
        assert "decomposed-milp" in dec.meta["plane_method"]
        assert dec.meta["plane_optimal"] is True


class TestStitchLowerBound:
    def test_optimal_stage1_certifies_its_stitch_count(self):
        bg, lab = labeled_graph(netlist=c17())
        if lab.meta.get("optimal"):
            assert stitch_lower_bound(lab) == lab.vh_count

    def test_oct_bound_is_used_when_not_optimal(self):
        bg, lab = labeled_graph(netlist=c17())
        lab.meta = dict(lab.meta)
        lab.meta["optimal"] = False
        lab.meta["oct_lower_bound"] = 1.2
        assert stitch_lower_bound(lab) == 2

    def test_no_evidence_means_zero(self):
        bg, lab = labeled_graph(exprs={"f": "a & b"})
        lab.meta = {}
        assert stitch_lower_bound(lab) == 0


class TestZigzagFold:
    """The heuristic alone must already be valid on every input."""

    @pytest.mark.parametrize("num_layers", [2, 3, 5])
    def test_fold_is_valid(self, num_layers):
        for netlist in (c17(), majority_voter(7)):
            bg, lab = labeled_graph(netlist=netlist)
            folded = _zigzag_fold(bg, lab, num_layers, True)
            folded.validate(bg, alignment=True)

    def test_fold_footprint_bounded_by_planar(self):
        bg, lab = labeled_graph(netlist=c17())
        folded = _zigzag_fold(bg, lab, 2, True)
        assert folded.rows <= lab.rows
        assert folded.cols <= lab.cols


class TestKLabelingValidate:
    def test_missing_node_detected(self):
        bg, lab = labeled_graph(exprs={"f": "a & b"})
        kl = KLabeling(2, {})
        with pytest.raises(LabelingError, match="no label"):
            kl.validate(bg)

    def test_plane_overflow_detected(self):
        bg, lab = labeled_graph(exprs={"f": "a & b"})
        kl = lift_labeling(lab, num_layers=1)
        nodes = list(bg.graph.nodes())
        kl.labels[nodes[0]] = KLabel(Label.H, 5)
        with pytest.raises(LabelingError, match="plane"):
            kl.validate(bg)

    def test_incompatible_edge_detected(self):
        bg, lab = labeled_graph(exprs={"f": "a & b"})
        kl = KLabeling(
            3, {v: KLabel(Label.H, 0) for v in bg.graph.nodes()}
        )
        with pytest.raises(LabelingError, match="non-adjacent"):
            kl.validate(bg, alignment=False)

    def test_port_off_plane0_detected(self):
        bg, lab = labeled_graph(netlist=c17())
        kl = assign_planes(bg, lab, 2)
        port = next(iter(bg.port_nodes()))
        if kl.labels[port].orientation is Label.VH:
            kl.labels[port] = KLabel(Label.VH, 1)
        else:
            kl.labels[port] = KLabel(Label.H, 1)
        with pytest.raises(LabelingError, match="plane-0"):
            kl.validate(bg, alignment=True)
