"""Tests for the VHLabeling data model and validity checking."""

import pytest

from repro.bdd import build_sbdd, sbdd_from_exprs
from repro.core import Label, LabelingError, VHLabeling, preprocess
from repro.expr import parse


@pytest.fixture
def chain_graph():
    """f = a & b: 1-terminal <- b-node <- a-node (a path of 3 nodes)."""
    return preprocess(sbdd_from_exprs({"f": parse("a & b")}))


class TestLabel:
    def test_row_col_membership(self):
        assert Label.H.has_row() and not Label.H.has_col()
        assert Label.V.has_col() and not Label.V.has_row()
        assert Label.VH.has_row() and Label.VH.has_col()


class TestMetrics:
    def test_counts(self):
        lab = VHLabeling({1: Label.H, 2: Label.V, 3: Label.VH})
        assert lab.rows == 2 and lab.cols == 2
        assert lab.semiperimeter == 4
        assert lab.max_dimension == 2
        assert lab.vh_count == 1

    def test_semiperimeter_is_n_plus_k(self):
        lab = VHLabeling({1: Label.H, 2: Label.V, 3: Label.VH, 4: Label.VH})
        assert lab.semiperimeter == 4 + 2

    def test_objective(self):
        lab = VHLabeling({1: Label.H, 2: Label.V})
        assert lab.objective(1.0) == 2
        assert lab.objective(0.0) == 1
        assert lab.objective(0.5) == 1.5


class TestValidation:
    def test_valid_alternating_chain(self, chain_graph):
        nodes = sorted(chain_graph.graph.nodes())
        root = next(iter(chain_graph.roots.values()))
        # Alternate H/V starting H at the root; terminal must be H too,
        # so give the middle node V.
        labels = {}
        for v in nodes:
            labels[v] = Label.H if v in (root, chain_graph.terminal) else Label.V
        lab = VHLabeling(labels)
        lab.validate(chain_graph)  # must not raise

    def test_adjacent_h_h_rejected(self, chain_graph):
        labels = {v: Label.H for v in chain_graph.graph.nodes()}
        lab = VHLabeling(labels)
        with pytest.raises(LabelingError, match="H-H|wordlines"):
            lab.validate(chain_graph)

    def test_adjacent_v_v_rejected(self, chain_graph):
        labels = {v: Label.V for v in chain_graph.graph.nodes()}
        with pytest.raises(LabelingError, match="V-V|bitlines"):
            VHLabeling(labels).validate(chain_graph, alignment=False)

    def test_all_vh_always_valid_structurally(self, chain_graph):
        labels = {v: Label.VH for v in chain_graph.graph.nodes()}
        VHLabeling(labels).validate(chain_graph)

    def test_missing_label_detected(self, chain_graph):
        with pytest.raises(LabelingError, match="no label"):
            VHLabeling({}).validate(chain_graph)

    def test_alignment_requires_ports_on_rows(self, chain_graph):
        root = next(iter(chain_graph.roots.values()))
        ports = {root, chain_graph.terminal}
        labels = {
            v: Label.V if v in ports else Label.H
            for v in chain_graph.graph.nodes()
        }
        # Structurally fine without alignment, invalid with it.
        lab = VHLabeling(labels)
        assert lab.is_valid(chain_graph, alignment=False)
        with pytest.raises(LabelingError, match="alignment"):
            lab.validate(chain_graph, alignment=True)

    def test_is_valid_boolean_wrapper(self, chain_graph):
        labels = {v: Label.VH for v in chain_graph.graph.nodes()}
        assert VHLabeling(labels).is_valid(chain_graph)
        assert not VHLabeling({}).is_valid(chain_graph)
