"""Tests for the VH-labeling solvers (Methods A and B, heuristic)."""

import pytest

from repro.bdd import build_sbdd, sbdd_from_exprs
from repro.core import (
    label_heuristic,
    label_min_semiperimeter,
    label_weighted,
    preprocess,
)
from repro.circuits import c17, decoder, parity_tree, priority_encoder
from repro.expr import parse


def graph_of(netlist):
    return preprocess(build_sbdd(netlist))


class TestMethodA:
    def test_valid_labeling(self, c17_netlist):
        bg = graph_of(c17_netlist)
        lab = label_min_semiperimeter(bg)
        lab.validate(bg, alignment=True)

    def test_semiperimeter_is_n_plus_oct(self, c17_netlist):
        bg = graph_of(c17_netlist)
        lab = label_min_semiperimeter(bg)
        assert lab.semiperimeter == bg.num_nodes + lab.vh_count

    def test_bipartite_graph_gets_no_vh(self):
        # dec is bipartite (pure AND-OR tree of even depth structure).
        bg = graph_of(decoder(4))
        lab = label_min_semiperimeter(bg)
        assert lab.meta["oct_size"] == 0

    def test_agrees_with_mip_at_gamma_one(self):
        for nl in (c17(), parity_tree(8), priority_encoder(5)):
            bg = graph_of(nl)
            a = label_min_semiperimeter(bg, alignment=False)
            b = label_weighted(bg, gamma=1.0, alignment=False)
            assert a.meta["optimal"] and b.meta["optimal"]
            assert a.semiperimeter == b.semiperimeter, nl.name

    def test_agrees_with_mip_at_gamma_one_aligned(self):
        for nl in (c17(), parity_tree(8)):
            bg = graph_of(nl)
            a = label_min_semiperimeter(bg, alignment=True)
            b = label_weighted(bg, gamma=1.0, alignment=True)
            if a.meta["optimal"]:
                assert a.semiperimeter == b.semiperimeter, nl.name
            else:
                assert a.semiperimeter >= b.semiperimeter, nl.name

    def test_bnb_backend(self, c17_netlist):
        bg = graph_of(c17_netlist)
        lab = label_min_semiperimeter(bg, backend="bnb")
        lab.validate(bg)
        ref = label_min_semiperimeter(bg, backend="highs")
        assert lab.semiperimeter == ref.semiperimeter


class TestMethodB:
    @pytest.mark.parametrize("gamma", [0.0, 0.25, 0.5, 0.75, 1.0])
    def test_valid_for_all_gammas(self, gamma, c17_netlist):
        bg = graph_of(c17_netlist)
        lab = label_weighted(bg, gamma=gamma)
        lab.validate(bg, alignment=True)

    def test_gamma_zero_minimizes_dimension(self, c17_netlist):
        bg = graph_of(c17_netlist)
        d0 = label_weighted(bg, gamma=0.0).max_dimension
        d1 = label_weighted(bg, gamma=1.0).max_dimension
        assert d0 <= d1

    def test_gamma_one_minimizes_semiperimeter(self, c17_netlist):
        bg = graph_of(c17_netlist)
        s1 = label_weighted(bg, gamma=1.0).semiperimeter
        s0 = label_weighted(bg, gamma=0.0).semiperimeter
        assert s1 <= s0

    def test_invalid_gamma_rejected(self, c17_netlist):
        bg = graph_of(c17_netlist)
        with pytest.raises(ValueError):
            label_weighted(bg, gamma=1.5)

    def test_alignment_pins_ports_to_rows(self, priority5):
        bg = graph_of(priority5)
        lab = label_weighted(bg, gamma=0.5, alignment=True)
        for port in bg.port_nodes():
            assert lab.labels[port].has_row()

    def test_without_alignment_can_be_smaller(self):
        # Alignment is a constraint: never improves the objective.
        for nl in (c17(), priority_encoder(5)):
            bg = graph_of(nl)
            free = label_weighted(bg, gamma=0.5, alignment=False)
            pinned = label_weighted(bg, gamma=0.5, alignment=True)
            assert free.objective(0.5) <= pinned.objective(0.5)

    def test_warm_start_bnb(self, c17_netlist):
        bg = graph_of(c17_netlist)
        warm = label_min_semiperimeter(bg)
        lab = label_weighted(bg, gamma=0.5, backend="bnb", time_limit=20, warm_start=warm)
        lab.validate(bg)
        ref = label_weighted(bg, gamma=0.5, backend="highs")
        assert lab.objective(0.5) >= ref.objective(0.5) - 1e-9

    def test_trace_recorded_with_bnb(self, c17_netlist):
        bg = graph_of(c17_netlist)
        lab = label_weighted(bg, gamma=0.5, backend="bnb", time_limit=20)
        assert lab.meta["trace"]

    def test_timeout_falls_back_to_warm_start(self, priority5):
        bg = graph_of(priority5)
        warm = label_min_semiperimeter(bg)
        lab = label_weighted(
            bg, gamma=0.5, backend="bnb", time_limit=0.0, warm_start=warm
        )
        lab.validate(bg)


class TestHeuristic:
    @pytest.mark.parametrize(
        "factory", [c17, lambda: decoder(4), lambda: priority_encoder(6)]
    )
    def test_valid_and_bounded(self, factory):
        nl = factory()
        bg = graph_of(nl)
        heur = label_heuristic(bg)
        heur.validate(bg, alignment=True)
        exact = label_weighted(bg, gamma=1.0)
        assert heur.semiperimeter >= exact.semiperimeter

    def test_fast_on_larger_graphs(self):
        import time

        bg = graph_of(priority_encoder(32))
        t0 = time.monotonic()
        lab = label_heuristic(bg)
        assert time.monotonic() - t0 < 5.0
        lab.validate(bg)


class TestBalancing:
    def test_mip_balances_components(self):
        """Figure 6: the MIP picks the balanced 2-coloring for free."""
        # Two disjoint chains feeding one output each; gamma=0 should
        # produce D close to ceil(n/2).
        exprs = {"f": parse("a & b & c & d"), "g": parse("p & q & r & s")}
        bg = preprocess(sbdd_from_exprs(exprs))
        lab = label_weighted(bg, gamma=0.0, alignment=False)
        n = bg.num_nodes
        assert lab.max_dimension <= (n + lab.vh_count + 1) // 2 + 1
