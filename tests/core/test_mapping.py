"""Tests for the crossbar mapping step (Section V-C)."""

import pytest

from repro.bdd import build_sbdd, sbdd_from_exprs
from repro.core import (
    Label,
    VHLabeling,
    label_weighted,
    map_to_crossbar,
    preprocess,
)
from repro.crossbar import ON, validate_design
from repro.expr import parse
from tests.conftest import all_envs


def synth(exprs_dict, gamma=0.5):
    bg = preprocess(sbdd_from_exprs(exprs_dict))
    lab = label_weighted(bg, gamma=gamma, alignment=True)
    return bg, lab, map_to_crossbar(bg, lab, name="t")


class TestDimensions:
    def test_rows_cols_match_labeling(self, c17_netlist):
        bg = preprocess(build_sbdd(c17_netlist))
        lab = label_weighted(bg, gamma=0.5)
        design = map_to_crossbar(bg, lab)
        assert design.num_rows == lab.rows
        assert design.num_cols == lab.cols
        assert design.semiperimeter == lab.semiperimeter
        assert design.max_dimension == lab.max_dimension

    def test_input_row_is_bottom_most(self, c17_netlist):
        bg = preprocess(build_sbdd(c17_netlist))
        lab = label_weighted(bg, gamma=0.5)
        design = map_to_crossbar(bg, lab)
        assert design.input_row == design.num_rows - 1

    def test_outputs_are_top_most(self):
        bg, lab, design = synth({"f": parse("a & b"), "g": parse("a | c")})
        out_rows = sorted(design.output_rows.values())
        assert out_rows == list(range(len(out_rows)))


class TestCells:
    def test_vh_nodes_get_stitch(self):
        # parity has odd cycles, so some node is VH.
        bg = preprocess(sbdd_from_exprs({"f": parse("a ^ b")}))
        lab = label_weighted(bg, gamma=0.5)
        design = map_to_crossbar(bg, lab)
        stitches = [lit for _, _, lit in design.cells() if lit == ON]
        assert len(stitches) == lab.vh_count

    def test_every_graph_edge_programmed(self, c17_netlist):
        bg = preprocess(build_sbdd(c17_netlist))
        lab = label_weighted(bg, gamma=0.5)
        design = map_to_crossbar(bg, lab)
        assert design.literal_count == bg.num_edges

    def test_memristor_count(self, c17_netlist):
        bg = preprocess(build_sbdd(c17_netlist))
        lab = label_weighted(bg, gamma=0.5)
        design = map_to_crossbar(bg, lab)
        assert design.memristor_count == bg.num_edges + lab.vh_count

    def test_invalid_labeling_rejected(self):
        bg = preprocess(sbdd_from_exprs({"f": parse("a & b")}))
        labels = {v: Label.H for v in bg.graph.nodes()}
        with pytest.raises(Exception):
            map_to_crossbar(bg, VHLabeling(labels))


class TestConstantOutputs:
    def test_constant_true_senses_input_row(self):
        bg, lab, design = synth({"f": parse("a"), "t": parse("1")})
        assert design.output_rows["t"] == design.input_row
        for env in all_envs(["a"]):
            assert design.evaluate(env)["t"] is True

    def test_constant_false_gets_isolated_row(self):
        bg, lab, design = synth({"f": parse("a"), "z": parse("a & ~a")})
        z_row = design.output_rows["z"]
        assert z_row != design.input_row
        for env in all_envs(["a"]):
            assert design.evaluate(env)["z"] is False

    def test_all_outputs_constant(self):
        bg = preprocess(sbdd_from_exprs({"t": parse("1"), "z": parse("0")}))
        lab = label_weighted(bg, gamma=0.5) if bg.num_nodes else VHLabeling({})
        design = map_to_crossbar(bg, lab)
        out = design.evaluate({})
        assert out == {"t": True, "z": False}


class TestEndToEndCorrectness:
    @pytest.mark.parametrize(
        "text",
        [
            "a", "~a", "a & b", "a | b", "a ^ b", "a ^ b ^ c",
            "(a & b) | (c & d)", "(a | b) & (c | d)",
            "(a & ~b) | (~a & b & c)", "~(a & b) & (c | ~d)",
        ],
    )
    @pytest.mark.parametrize("gamma", [0.0, 0.5, 1.0])
    def test_single_output_formulas(self, text, gamma):
        e = parse(text)
        bg, lab, design = synth({"f": e}, gamma=gamma)
        report = validate_design(
            design, lambda env: {"f": e.evaluate(env)}, sorted(e.variables())
        )
        assert report.ok, (text, gamma, report.counterexample)

    def test_multi_output_shared_logic(self):
        exprs = {
            "f": parse("(a & b) | c"),
            "g": parse("a & b"),
            "h": parse("~c & (a | b)"),
        }
        bg, lab, design = synth(exprs)
        report = validate_design(
            design,
            lambda env: {k: e.evaluate(env) for k, e in exprs.items()},
            ["a", "b", "c"],
        )
        assert report.ok, report.counterexample
