"""Layered mapping tests, including the layers=1 parity property.

The parity suite is the acceptance gate for the whole 3D path: on every
Table-1 circuit, running the K-labeling pipeline at ``layers=1`` must
reproduce the planar pipeline bit for bit — same serialized design,
same semiperimeter, same validation verdict.
"""

from functools import lru_cache

import pytest

from repro.bdd import build_sbdd
from repro.bench.suites import circuit, suite
from repro.core import (
    Compact,
    assign_planes,
    map_to_crossbar,
    map_to_crossbar3d,
    preprocess,
)
from repro.crossbar import ON, CrossbarDesign3D, design_to_json, validate_design
from repro.crossbar.design import h_plane, v_plane

TABLE1 = [b.name for b in suite("fast")]


@lru_cache(maxsize=None)
def labeled(name: str):
    netlist = circuit(name)
    bg = preprocess(build_sbdd(netlist))
    labeling = Compact(time_limit=5.0).label(bg)
    return netlist, bg, labeling


class TestLayersOneParity:
    """K-labeling at layers=1 == the 2D pipeline, bit for bit."""

    @pytest.mark.parametrize("name", TABLE1)
    def test_bit_identical_on_table1(self, name):
        netlist, bg, labeling = labeled(name)
        design2d = map_to_crossbar(bg, labeling, name=name)
        kl = assign_planes(bg, labeling, 1)
        design3d = map_to_crossbar3d(bg, kl, name=name)

        assert design_to_json(design3d) == design_to_json(design2d)
        assert design3d.semiperimeter == design2d.semiperimeter
        assert design3d.max_dimension == design2d.max_dimension

        report2d = validate_design(design2d, netlist.evaluate, netlist.inputs)
        report3d = validate_design(design3d, netlist.evaluate, netlist.inputs)
        assert report3d.ok == report2d.ok
        assert report3d.checked == report2d.checked
        assert report3d.exhaustive == report2d.exhaustive


class TestLayeredSynthesis:
    """K >= 2 on every Table-1 circuit: validated and never wider than 2D."""

    @pytest.mark.parametrize("name", TABLE1)
    @pytest.mark.parametrize("num_layers", [2, 3])
    def test_validated_and_never_worse(self, name, num_layers):
        netlist, bg, labeling = labeled(name)
        kl = assign_planes(bg, labeling, num_layers, time_limit=5.0)
        design = map_to_crossbar3d(bg, kl, name=name)
        assert design.num_layers == num_layers
        assert design.semiperimeter <= labeling.semiperimeter
        report = validate_design(design, netlist.evaluate, netlist.inputs)
        assert report.ok, f"{name} K={num_layers}: {report.counterexample}"


class TestMapping3dStructure:
    def test_facade_produces_layered_design(self):
        netlist = circuit("c17")
        result = Compact(layers=2).synthesize_netlist(netlist)
        assert isinstance(result.design, CrossbarDesign3D)
        assert result.design.num_layers == 2
        assert result.optimal is False

    def test_every_stitch_is_an_on_via(self):
        _, bg, labeling = labeled("voter9")
        kl = assign_planes(bg, labeling, 2)
        design = map_to_crossbar3d(bg, kl, name="voter9")
        vias = [
            (l, r, c)
            for l, r, c, lit in design.cells3d()
            if lit == ON
        ]
        assert len(vias) == kl.vh_count
        for l, r, c in vias:
            node_h = design.plane_labels[h_plane(l)][r]
            node_v = design.plane_labels[v_plane(l)][c]
            assert node_h == node_v

    def test_every_edge_lands_in_some_layer(self):
        _, bg, labeling = labeled("c17")
        kl = assign_planes(bg, labeling, 3)
        design = map_to_crossbar3d(bg, kl, name="c17")
        assert design.literal_count == bg.num_edges

    def test_ports_live_on_plane0(self):
        netlist = circuit("c17")
        result = Compact(layers=2).synthesize_netlist(netlist)
        design = result.design
        assert 0 <= design.input_row < design.plane_sizes[0]
        for row in design.output_rows.values():
            assert 0 <= row < design.plane_sizes[0]

    def test_footprint_matches_plane_maxima(self):
        _, bg, labeling = labeled("voter9")
        kl = assign_planes(bg, labeling, 3)
        design = map_to_crossbar3d(bg, kl, name="voter9")
        sizes = design.plane_sizes
        assert design.num_rows == max(sizes[0::2])
        assert design.num_cols == max(sizes[1::2])
        assert design.semiperimeter == kl.semiperimeter
