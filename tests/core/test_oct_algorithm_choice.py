"""Method A with either exact OCT engine must give identical sizes."""

import pytest

from repro.bdd import build_sbdd
from repro.circuits import c17, mux_tree, parity_tree, random_netlist
from repro.core import label_min_semiperimeter, preprocess


@pytest.mark.parametrize(
    "factory",
    [c17, lambda: parity_tree(8), lambda: mux_tree(2),
     lambda: random_netlist(5, 18, 3, seed=2)],
)
def test_engines_agree(factory):
    nl = factory()
    bg = preprocess(build_sbdd(nl))
    # Without alignment both engines realise exactly S = n + |OCT_min|.
    via_vc = label_min_semiperimeter(bg, alignment=False, algorithm="vertex_cover")
    via_ic = label_min_semiperimeter(bg, alignment=False, algorithm="compression")
    assert via_vc.semiperimeter == via_ic.semiperimeter, nl.name
    via_ic.validate(bg, alignment=False)
    # With alignment both stay valid (port promotion may differ by a
    # few VH labels depending on which optimal transversal was found).
    aligned = label_min_semiperimeter(bg, alignment=True, algorithm="compression")
    aligned.validate(bg, alignment=True)


def test_unknown_algorithm_rejected(c17_netlist):
    bg = preprocess(build_sbdd(c17_netlist))
    with pytest.raises(ValueError):
        label_min_semiperimeter(bg, algorithm="magic8ball")
