"""Tests for BDD graph pre-processing (Section V-A)."""

from repro.bdd import FALSE_ID, TRUE_ID, build_sbdd, sbdd_from_exprs
from repro.core import preprocess
from repro.crossbar import Lit
from repro.expr import parse


class TestPreprocess:
    def test_zero_terminal_removed(self, c17_netlist):
        bg = preprocess(build_sbdd(c17_netlist))
        assert FALSE_ID not in bg.graph
        assert bg.terminal == TRUE_ID

    def test_node_and_edge_counts(self, c17_netlist):
        sbdd = build_sbdd(c17_netlist)
        bg = preprocess(sbdd)
        # Graph drops the 0-terminal and the edges into it.
        assert bg.num_nodes == sbdd.node_count() - 1
        assert bg.num_edges <= sbdd.edge_count()

    def test_edges_carry_literals(self):
        bg = preprocess(sbdd_from_exprs({"f": parse("a & b")}))
        lits = {str(bg.graph.edge_data(u, v)) for u, v in bg.graph.edges()}
        assert "a" in lits and "b" in lits
        for u, v in bg.graph.edges():
            assert isinstance(bg.graph.edge_data(u, v), Lit)

    def test_then_edge_positive_else_edge_negative(self):
        bg = preprocess(sbdd_from_exprs({"f": parse("a | b")}))
        # a|b: a-node --(~a)--> b-node, a-node --(a)--> 1, b-node --(b)--> 1.
        lits = sorted(str(bg.graph.edge_data(u, v)) for u, v in bg.graph.edges())
        assert lits == ["a", "b", "~a"]

    def test_constant_true_output(self):
        bg = preprocess(sbdd_from_exprs({"f": parse("1")}))
        assert bg.constant_outputs == {"f": True}
        assert bg.num_nodes == 0 and bg.roots == {}

    def test_constant_false_output(self):
        bg = preprocess(sbdd_from_exprs({"f": parse("a & ~a")}))
        assert bg.constant_outputs == {"f": False}

    def test_mixed_constant_and_real_outputs(self):
        bg = preprocess(
            sbdd_from_exprs({"f": parse("a"), "t": parse("1"), "z": parse("0")})
        )
        assert set(bg.roots) == {"f"}
        assert bg.constant_outputs == {"t": True, "z": False}
        assert bg.terminal == TRUE_ID

    def test_port_nodes(self, priority5):
        bg = preprocess(build_sbdd(priority5))
        ports = bg.port_nodes()
        assert bg.terminal in ports
        assert set(bg.roots.values()) <= ports

    def test_tautology_edge_delivery(self):
        # f = a | ~a is reduced to constant TRUE by the BDD engine.
        bg = preprocess(sbdd_from_exprs({"f": parse("a | ~a")}))
        assert bg.constant_outputs == {"f": True}

    def test_shared_roots_map_once(self):
        bg = preprocess(sbdd_from_exprs({"f": parse("a & b"), "g": parse("a & b")}))
        assert bg.roots["f"] == bg.roots["g"]
        assert bg.num_nodes == 3  # a-node, b-node, 1-terminal
