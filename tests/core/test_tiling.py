"""Tests for multi-tile synthesis under fixed crossbar dimensions."""

import pytest

from repro.bdd import build_sbdd
from repro.core import (
    Compact,
    ConstraintInfeasibleError,
    TiledDesign,
    partition_outputs,
    tile_netlist,
)
from repro.circuits import decoder, priority_encoder
from tests.conftest import all_envs


class TestTileNetlist:
    def test_single_tile_when_it_fits(self, dec3):
        free = Compact(gamma=0.5).synthesize_netlist(dec3).design
        tiled = tile_netlist(dec3, max_rows=free.num_rows + 2, max_cols=free.num_cols + 2)
        assert tiled.num_tiles == 1
        for env in all_envs(dec3.inputs):
            assert tiled.evaluate(env) == dec3.evaluate(env)

    def test_splits_when_too_small(self):
        nl = decoder(4)
        free = Compact(gamma=0.5).synthesize_netlist(nl).design
        budget_rows = max(6, free.num_rows // 2)
        budget_cols = max(6, free.num_cols)
        tiled = tile_netlist(nl, max_rows=budget_rows, max_cols=budget_cols)
        assert tiled.num_tiles >= 2
        for tile in tiled.tiles:
            assert tile.num_rows <= budget_rows
            assert tile.num_cols <= budget_cols
        for env in all_envs(nl.inputs):
            assert tiled.evaluate(env) == nl.evaluate(env)

    def test_every_output_assigned(self):
        nl = priority_encoder(6)
        tiled = tile_netlist(nl, max_rows=12, max_cols=12)
        assert set(tiled.output_tile) == set(nl.outputs)
        for out, ti in tiled.output_tile.items():
            assert out in tiled.tiles[ti].output_rows

    def test_infeasible_single_output_raises(self):
        nl = priority_encoder(8)
        with pytest.raises(ConstraintInfeasibleError):
            tile_netlist(nl, max_rows=2, max_cols=2)

    def test_metrics(self):
        nl = decoder(3)
        tiled = tile_netlist(nl, max_rows=10, max_cols=10)
        assert tiled.total_area == sum(t.area for t in tiled.tiles)
        assert tiled.total_semiperimeter == sum(t.semiperimeter for t in tiled.tiles)
        assert tiled.delay_steps == max(t.delay_steps for t in tiled.tiles)
        assert "tiles=" in repr(tiled)

    def test_constant_outputs_get_a_tile(self):
        from repro.circuits import Netlist

        nl = Netlist("t", inputs=["a", "b"], outputs=["f", "one"])
        nl.add_gate("f", "AND", ["a", "b"])
        nl.add_gate("one", "CONST1", [])
        tiled = tile_netlist(nl, max_rows=8, max_cols=8)
        for env in all_envs(["a", "b"]):
            out = tiled.evaluate(env)
            assert out["one"] is True
            assert out["f"] == (env["a"] and env["b"])


class TestPartitionOutputs:
    def test_tile_budget_is_hard(self):
        nl = decoder(4)
        sbdd = build_sbdd(nl)
        tiled = partition_outputs(sbdd, max_rows=14, max_cols=14, time_limit=20)
        for tile in tiled.tiles:
            assert tile.num_rows <= 14 and tile.num_cols <= 14

    def test_groups_recorded_in_meta(self):
        nl = decoder(3)
        sbdd = build_sbdd(nl)
        tiled = partition_outputs(sbdd, max_rows=30, max_cols=30)
        groups = tiled.meta["groups"]
        assert sorted(o for g in groups for o in g) == sorted(nl.outputs)

    def test_bigger_budget_fewer_tiles(self):
        nl = decoder(4)
        sbdd = build_sbdd(nl)
        small = partition_outputs(sbdd, max_rows=12, max_cols=12, time_limit=20)
        large = partition_outputs(sbdd, max_rows=60, max_cols=60, time_limit=20)
        assert large.num_tiles <= small.num_tiles
