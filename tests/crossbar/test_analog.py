"""Tests for the resistive analog model (the SPICE stand-in)."""

import pytest

from repro import Compact
from repro.circuits import c17, decoder, parity_tree
from repro.crossbar import AnalogParams, CrossbarDesign, Lit, ON, simulate
from tests.conftest import all_envs


def tiny():
    d = CrossbarDesign("tiny", 2, 1, input_row=1, output_rows={"f": 0})
    d.set_cell(1, 0, Lit("a", True))
    d.set_cell(0, 0, ON)
    return d


class TestVoltagesPhysical:
    def test_true_path_senses_high(self):
        r = simulate(tiny(), {"a": True})
        assert r.outputs["f"] is True
        assert r.voltages["f"] > 0.9  # two R_on in series vs 1 MOhm sense

    def test_false_path_senses_low(self):
        r = simulate(tiny(), {"a": False})
        assert r.outputs["f"] is False
        assert r.voltages["f"] < 0.05

    def test_input_current_positive_when_conducting(self):
        r_on = simulate(tiny(), {"a": True})
        r_off = simulate(tiny(), {"a": False})
        assert r_on.input_current > r_off.input_current > 0

    def test_voltages_bounded_by_supply(self):
        r = simulate(tiny(), {"a": True})
        assert (r.row_voltages <= 1.0 + 1e-9).all()
        assert (r.row_voltages >= -1e-9).all()

    def test_custom_params(self):
        params = AnalogParams(v_in=2.0, threshold=0.4)
        r = simulate(tiny(), {"a": True}, params)
        assert r.voltages["f"] > 0.8 * 2.0
        assert r.outputs["f"]

    def test_output_on_input_row(self):
        d = CrossbarDesign("x", 1, 0, input_row=0, output_rows={"t": 0})
        r = simulate(d, {})
        assert r.outputs["t"] is True
        assert r.voltages["t"] == pytest.approx(1.0)

    def test_isolated_output_row(self):
        d = CrossbarDesign("x", 2, 0, input_row=1, output_rows={"z": 0})
        r = simulate(d, {})
        assert r.outputs["z"] is False


class TestAgainstLogicalEvaluation:
    @pytest.mark.parametrize("factory", [c17, lambda: decoder(3), lambda: parity_tree(5)])
    def test_analog_matches_logical(self, factory):
        """The nodal-analysis readout must agree with BFS connectivity,
        i.e. leakage never masquerades as a sneak path."""
        nl = factory()
        res = Compact(gamma=0.5).synthesize_netlist(nl)
        for i, env in enumerate(all_envs(nl.inputs)):
            if i % 7:  # sample for speed; still dozens of vectors
                continue
            logical = res.design.evaluate(env)
            analog = simulate(res.design, env)
            assert analog.outputs == logical, env

    def test_separation_margin(self):
        """True and false readouts are separated by a wide margin."""
        nl = c17()
        res = Compact(gamma=0.5).synthesize_netlist(nl)
        highs, lows = [], []
        for env in all_envs(nl.inputs):
            logical = res.design.evaluate(env)
            analog = simulate(res.design, env)
            for out, value in logical.items():
                (highs if value else lows).append(analog.voltages[out])
        assert min(highs) > 2 * max(lows)
