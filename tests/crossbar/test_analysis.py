"""Tests for the design analytics module."""

import pytest

from repro import Compact
from repro.crossbar import analyze_design, conducting_depths
from repro.expr import parse


@pytest.fixture(scope="module")
def and3():
    e = parse("a & b & c")
    design = Compact(gamma=0.5).synthesize_expr(e, name="f").design
    return e, design


class TestConductingDepths:
    def test_unsatisfied_output_unreachable(self, and3):
        _e, design = and3
        depths = conducting_depths(design, {"a": True, "b": True, "c": False})
        assert depths["f"] is None

    def test_satisfied_output_has_depth(self, and3):
        _e, design = and3
        depths = conducting_depths(design, {"a": True, "b": True, "c": True})
        # A 3-literal chain needs at least 3 memristor hops.
        assert depths["f"] is not None and depths["f"] >= 3

    def test_depth_is_even(self, and3):
        """Row -> col -> row alternation: any other wordline sits an even
        number of memristor hops from the input wordline."""
        _e, design = and3
        depths = conducting_depths(design, {"a": True, "b": True, "c": True})
        assert depths["f"] % 2 == 0

    def test_output_on_input_row_depth_zero(self):
        res = Compact().synthesize_expr({"t": parse("1"), "f": parse("a")})
        depths = conducting_depths(res.design, {"a": False})
        assert depths["t"] == 0


class TestAnalyzeDesign:
    def test_report_fields(self, and3):
        e, design = and3
        report = analyze_design(design, sorted(e.variables()))
        assert 0 < report.utilization <= 1
        assert report.assignments_checked == 8
        assert report.worst_path_depth is not None
        assert report.min_high_voltage is not None
        assert report.max_low_voltage is not None
        assert report.margin is not None and report.margin > 0.5

    def test_margin_separates_levels(self, and3):
        e, design = and3
        report = analyze_design(design, sorted(e.variables()))
        assert report.min_high_voltage > 0.5
        assert report.max_low_voltage < 0.5

    def test_logic_only_mode(self, and3):
        e, design = and3
        report = analyze_design(design, sorted(e.variables()), analog=False)
        assert report.min_high_voltage is None
        assert report.margin is None
        assert report.worst_path_depth is not None

    def test_sampled_mode_beyond_limit(self):
        from repro.circuits import priority_encoder

        nl = priority_encoder(16)
        design = Compact(gamma=1.0, method="heuristic").synthesize_netlist(nl).design
        report = analyze_design(
            design, nl.inputs, exhaustive_limit=8, samples=32, analog=False
        )
        assert report.assignments_checked == 32

    def test_deeper_chain_has_larger_depth(self):
        shallow = Compact().synthesize_expr(parse("a"), name="f").design
        deep = Compact().synthesize_expr(parse("a & b & c & d & e"), name="f").design
        ra = analyze_design(shallow, ["a"], analog=False)
        rb = analyze_design(deep, ["a", "b", "c", "d", "e"], analog=False)
        assert rb.worst_path_depth > ra.worst_path_depth
