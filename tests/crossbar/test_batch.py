"""Tests for vectorized batch evaluation."""

import itertools

import numpy as np
import pytest

from repro import Compact
from repro.circuits import c17, decoder, random_netlist
from repro.crossbar import assignments_to_matrix, batch_evaluate
from repro.expr import parse


def all_matrix(n):
    return np.array(
        list(itertools.product([False, True], repeat=n)), dtype=bool
    )


class TestBatchEvaluate:
    @pytest.mark.parametrize(
        "factory", [c17, lambda: decoder(3), lambda: random_netlist(6, 25, 4, seed=5)]
    )
    def test_matches_scalar_evaluation(self, factory):
        nl = factory()
        design = Compact(gamma=0.5).synthesize_netlist(nl).design
        X = all_matrix(len(nl.inputs))
        batch = batch_evaluate(design, nl.inputs, X)
        for i in range(X.shape[0]):
            env = dict(zip(nl.inputs, X[i]))
            ref = design.evaluate(env)
            assert {k: bool(v[i]) for k, v in batch.items()} == ref

    def test_shape_validation(self):
        design = Compact().synthesize_expr(parse("a & b"), name="f").design
        with pytest.raises(ValueError):
            batch_evaluate(design, ["a", "b"], np.zeros((4, 3), dtype=bool))

    def test_constant_outputs_broadcast(self):
        res = Compact().synthesize_expr({"f": parse("a"), "z": parse("0")})
        X = all_matrix(1)
        out = batch_evaluate(res.design, ["a"], X)
        assert not out["z"].any()
        assert out["f"].tolist() == [False, True]

    def test_assignments_to_matrix(self):
        envs = [{"a": True, "b": False}, {"a": False, "b": True}]
        X = assignments_to_matrix(envs, ["a", "b"])
        assert X.tolist() == [[True, False], [False, True]]

    def test_large_batch(self):
        nl = decoder(4)
        design = Compact(gamma=0.5).synthesize_netlist(nl).design
        X = all_matrix(4)
        big = np.vstack([X] * 64)  # 1024 assignments
        out = batch_evaluate(design, nl.inputs, big)
        assert out["d0"].shape == (1024,)
        # One-hot property holds row-wise.
        stacked = np.stack([out[f"d{i}"] for i in range(16)], axis=1)
        assert (stacked.sum(axis=1) == 1).all()

    def test_empty_design_columns(self):
        res = Compact().synthesize_expr({"t": parse("1")})
        out = batch_evaluate(res.design, [], np.zeros((3, 0), dtype=bool))
        assert out["t"].all()
