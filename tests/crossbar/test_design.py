"""Unit tests for the crossbar design container and evaluation."""

import pytest

from repro.crossbar import OFF, ON, CrossbarDesign, Lit


def tiny_design():
    """2x2 crossbar computing f = a (input row 1, output row 0).

    Row 1 --a--> col 0 --1--> row 0.
    """
    d = CrossbarDesign("tiny", 2, 2, input_row=1, output_rows={"f": 0})
    d.set_cell(1, 0, Lit("a", True))
    d.set_cell(0, 0, ON)
    return d


class TestConstruction:
    def test_needs_a_row(self):
        with pytest.raises(ValueError):
            CrossbarDesign("x", 0, 3, input_row=0, output_rows={})

    def test_input_row_bounds(self):
        with pytest.raises(ValueError):
            CrossbarDesign("x", 2, 2, input_row=5, output_rows={})

    def test_output_row_bounds(self):
        with pytest.raises(ValueError):
            CrossbarDesign("x", 2, 2, input_row=0, output_rows={"f": 9})

    def test_cell_out_of_range(self):
        d = tiny_design()
        with pytest.raises(IndexError):
            d.set_cell(5, 0, ON)

    def test_reprogramming_conflict_rejected(self):
        d = tiny_design()
        with pytest.raises(ValueError, match="already programmed"):
            d.set_cell(1, 0, Lit("b", True))

    def test_reprogramming_same_value_ok(self):
        d = tiny_design()
        d.set_cell(1, 0, Lit("a", True))  # idempotent

    def test_off_cells_not_stored(self):
        d = tiny_design()
        d.set_cell(1, 1, OFF)
        assert d.memristor_count == 2
        assert d.cell(1, 1) == OFF


class TestMetrics:
    def test_basic_metrics(self):
        d = tiny_design()
        assert d.semiperimeter == 4
        assert d.max_dimension == 2
        assert d.area == 4
        assert d.memristor_count == 2
        assert d.literal_count == 1
        assert d.delay_steps == 3


class TestEvaluation:
    def test_true_path(self):
        d = tiny_design()
        assert d.evaluate({"a": True}) == {"f": True}

    def test_false_path(self):
        d = tiny_design()
        assert d.evaluate({"a": False}) == {"f": False}

    def test_program_returns_on_cells(self):
        d = tiny_design()
        assert d.program({"a": True}) == {(1, 0), (0, 0)}
        assert d.program({"a": False}) == {(0, 0)}

    def test_negated_literal(self):
        d = CrossbarDesign("neg", 2, 1, input_row=1, output_rows={"f": 0})
        d.set_cell(1, 0, Lit("a", False))
        d.set_cell(0, 0, ON)
        assert d.evaluate({"a": False})["f"] is True
        assert d.evaluate({"a": True})["f"] is False

    def test_multi_hop_sneak_path(self):
        # row2 -a-> col0 -1-> row1 -b-> col1 -1-> row0.
        d = CrossbarDesign("hop", 3, 2, input_row=2, output_rows={"f": 0})
        d.set_cell(2, 0, Lit("a", True))
        d.set_cell(1, 0, ON)
        d.set_cell(1, 1, Lit("b", True))
        d.set_cell(0, 1, ON)
        assert d.evaluate({"a": 1, "b": 1})["f"]
        assert not d.evaluate({"a": 1, "b": 0})["f"]
        assert not d.evaluate({"a": 0, "b": 1})["f"]

    def test_output_on_input_row_always_true(self):
        d = CrossbarDesign("x", 2, 1, input_row=1, output_rows={"f": 1})
        assert d.evaluate({})["f"] is True

    def test_constant_outputs_dict(self):
        d = CrossbarDesign(
            "x", 1, 0, input_row=0, output_rows={}, constant_outputs={"z": False}
        )
        assert d.evaluate({}) == {"z": False}


class TestPresentation:
    def test_grid_and_render(self):
        d = tiny_design()
        grid = d.to_grid()
        assert grid[1][0] == "a" and grid[0][0] == "1" and grid[0][1] == "0"
        text = d.render()
        assert "<- Vin" in text and "-> f" in text

    def test_repr(self):
        assert "2x2" in repr(tiny_design())
