"""Tests for the layered crossbar model (:class:`CrossbarDesign3D`)."""

import pytest

from repro.crossbar import CrossbarDesign3D, Lit, ON, h_plane, v_plane
from repro.crossbar.design import CrossbarDesign


def and_gate_3d():
    """f = a & b over two layers: input -> a (layer 0) -> b (layer 1) -> f.

    Plane 0 holds the ports (input row 1, output row 0), plane 1 one
    bitline, plane 2 one wordline; the layer-1 cell joins plane-2 wire 0
    back to... no — flow must return to plane 0 to be sensed, so route:
    input (p0 w1) --a--> p1 b0 --b--> p0 w0 (the output).
    """
    design = CrossbarDesign3D(
        "and3d", plane_sizes=[2, 1, 1], input_row=1, output_rows={"f": 0}
    )
    design.set_cell3(0, 1, 0, Lit("a", True))
    design.set_cell3(0, 0, 0, Lit("b", True))
    return design


class TestGeometry:
    def test_plane_orientation_helpers(self):
        assert h_plane(0) == 0 and v_plane(0) == 1
        assert h_plane(1) == 2 and v_plane(1) == 1
        assert h_plane(2) == 2 and v_plane(2) == 3
        assert h_plane(3) == 4 and v_plane(3) == 3

    def test_footprint_is_plane_maxima(self):
        design = CrossbarDesign3D(
            "d", plane_sizes=[3, 5, 2, 4], input_row=0, output_rows={}
        )
        assert design.num_layers == 3
        assert design.num_rows == 3  # max(3, 2)
        assert design.num_cols == 5  # max(5, 4)
        assert design.semiperimeter == 8

    def test_needs_at_least_two_planes(self):
        with pytest.raises(ValueError, match="planes"):
            CrossbarDesign3D("d", plane_sizes=[3], input_row=0, output_rows={})

    def test_rejects_negative_plane_size(self):
        with pytest.raises(ValueError):
            CrossbarDesign3D("d", plane_sizes=[2, -1], input_row=0, output_rows={})

    def test_ports_must_fit_plane0(self):
        with pytest.raises(ValueError):
            CrossbarDesign3D("d", plane_sizes=[2, 1], input_row=5, output_rows={})
        with pytest.raises(ValueError):
            CrossbarDesign3D(
                "d", plane_sizes=[2, 1], input_row=0, output_rows={"f": 7}
            )


class TestCellAccess:
    def test_set_and_get(self):
        from repro.crossbar import OFF

        design = and_gate_3d()
        assert design.cell3(0, 1, 0) == Lit("a", True)
        assert design.cell3(1, 0, 0) == OFF  # unprogrammed site

    def test_planar_accessors_raise(self):
        design = and_gate_3d()
        with pytest.raises(TypeError, match="cells3d"):
            list(design.cells())
        with pytest.raises(TypeError):
            design.set_cell(0, 0, Lit("a", True))
        with pytest.raises(TypeError):
            design.cell(0, 0)
        with pytest.raises(TypeError):
            design.to_grid()

    def test_out_of_plane_site_rejected(self):
        design = and_gate_3d()
        with pytest.raises(IndexError):
            design.set_cell3(0, 5, 0, ON)
        with pytest.raises(IndexError):
            design.set_cell3(2, 0, 0, ON)
        with pytest.raises(IndexError):
            design.set_cell3(1, 0, 3, ON)

    def test_base_class_cells3d_matches_cells(self):
        planar = CrossbarDesign("p", num_rows=2, num_cols=2, input_row=1,
                                output_rows={"f": 0})
        planar.set_cell(0, 1, Lit("x", True))
        planar.set_cell(1, 0, Lit("y", False))
        assert [(0, r, c, lit) for r, c, lit in planar.cells()] == list(
            planar.cells3d()
        )
        planar.set_cell3(0, 0, 0, ON)
        assert planar.cell3(0, 0, 0) == ON
        with pytest.raises(IndexError):
            planar.set_cell3(1, 0, 0, ON)


class TestEvaluation:
    def test_and_gate_truth_table(self):
        design = and_gate_3d()
        for a in (False, True):
            for b in (False, True):
                assert design.evaluate({"a": a, "b": b}) == {"f": a and b}

    def test_two_layer_chain_through_upper_plane(self):
        # input (p0 w1) --a--> p1 b0; via stitches p1 b0 to p2 w0 via an
        # ON cell in layer 1; then flow cannot reach the output without a
        # path back down -- the output stays False while a alone is True.
        design = CrossbarDesign3D(
            "chain", plane_sizes=[2, 1, 1], input_row=1, output_rows={"f": 0}
        )
        design.set_cell3(0, 1, 0, Lit("a", True))
        design.set_cell3(1, 0, 0, Lit("b", True))
        assert design.evaluate({"a": True, "b": False}) == {"f": False}
        assert design.evaluate({"a": False, "b": True}) == {"f": False}

    def test_constant_outputs(self):
        design = CrossbarDesign3D(
            "c", plane_sizes=[2, 1], input_row=0,
            output_rows={"t": 0, "z": 1}, constant_outputs={"t": True, "z": False},
        )
        out = design.evaluate({})
        assert out == {"t": True, "z": False}


class TestMetrics:
    def test_counts(self):
        design = and_gate_3d()
        design.set_cell3(1, 0, 0, ON)
        assert design.memristor_count == 3
        assert design.literal_count == 2
        assert design.via_count == 1

    def test_delay_counts_every_wordline_plane(self):
        design = CrossbarDesign3D(
            "d", plane_sizes=[3, 2, 4], input_row=0, output_rows={}
        )
        assert design.delay_steps == 3 + 4 + 1


class TestRendering:
    def test_render_mentions_every_layer(self):
        design = and_gate_3d()
        text = design.render()
        assert "layer 0" in text
        assert "layer 1" in text

    def test_to_grids_one_per_layer(self):
        design = and_gate_3d()
        grids = design.to_grids()
        assert len(grids) == 2

    def test_repr(self):
        assert "layers=2" in repr(and_gate_3d())


class TestRemapGating:
    def test_permuted_raises_clearly(self):
        design = and_gate_3d()
        with pytest.raises(ValueError, match="planar"):
            design.permuted([0, 1], [0])
