"""Property tests for the fault-class signature (FaultMap.signature)."""

from __future__ import annotations

import random

import pytest

from repro.crossbar import (
    STUCK_OFF,
    STUCK_ON,
    Fault,
    FaultMap,
    fault_map_from_json,
    fault_map_to_json,
    random_fault_map,
)


def _random_faults(rng: random.Random, rows: int, cols: int) -> list[Fault]:
    cells = [(r, c) for r in range(rows) for c in range(cols)]
    picked = rng.sample(cells, rng.randrange(0, len(cells) // 2 + 1))
    return [
        Fault(r, c, STUCK_ON if rng.random() < 0.3 else STUCK_OFF)
        for r, c in picked
    ]


@pytest.mark.parametrize("seed", range(20))
def test_equal_maps_have_equal_signatures(seed):
    rng = random.Random(seed)
    rows, cols = rng.randrange(2, 9), rng.randrange(2, 9)
    faults = _random_faults(rng, rows, cols)
    assert (
        FaultMap(rows, cols, tuple(faults)).signature()
        == FaultMap(rows, cols, tuple(faults)).signature()
    )


@pytest.mark.parametrize("seed", range(20))
def test_permuted_fault_lists_share_one_signature(seed):
    rng = random.Random(1000 + seed)
    rows, cols = rng.randrange(2, 9), rng.randrange(2, 9)
    faults = _random_faults(rng, rows, cols)
    shuffled = list(faults)
    rng.shuffle(shuffled)
    assert (
        FaultMap(rows, cols, tuple(faults)).signature()
        == FaultMap(rows, cols, tuple(shuffled)).signature()
    )


@pytest.mark.parametrize("seed", range(10))
def test_signature_survives_json_round_trip(seed):
    fault_map = random_fault_map(6, 7, p_stuck_on=0.05, p_stuck_off=0.1, seed=seed)
    round_tripped = fault_map_from_json(fault_map_to_json(fault_map))
    assert round_tripped.signature() == fault_map.signature()


def test_signature_is_sensitive_to_content():
    base = FaultMap(4, 4, (Fault(1, 2, STUCK_ON),))
    assert base.signature() != FaultMap(4, 4, (Fault(1, 2, STUCK_OFF),)).signature()
    assert base.signature() != FaultMap(4, 4, (Fault(2, 1, STUCK_ON),)).signature()
    assert base.signature() != FaultMap(4, 4, ()).signature()
    # Same faults on a different array size is a different fault class.
    assert base.signature() != FaultMap(5, 4, (Fault(1, 2, STUCK_ON),)).signature()


def test_signature_shape():
    signature = FaultMap(3, 3, ()).signature()
    assert len(signature) == 64
    assert set(signature) <= set("0123456789abcdef")
