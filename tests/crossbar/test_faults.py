"""Tests for stuck-at fault modeling and yield analysis."""

import pytest

from repro import Compact
from repro.circuits import c17, decoder
from repro.crossbar import (
    STUCK_OFF,
    STUCK_ON,
    Fault,
    critical_cells,
    evaluate_with_faults,
    is_functional_under_faults,
    yield_estimate,
)
from repro.expr import parse


@pytest.fixture(scope="module")
def and_design():
    e = parse("a & b")
    res = Compact(gamma=0.5).synthesize_expr(e, name="f")
    return res.design, e


class TestFaultModel:
    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError):
            Fault(0, 0, "wobbly")

    def test_no_faults_matches_normal_evaluation(self, and_design):
        design, _ = and_design
        for env in ({"a": 1, "b": 1}, {"a": 1, "b": 0}):
            assert evaluate_with_faults(design, env, []) == design.evaluate(env)

    def test_stuck_off_kills_true_path(self, and_design):
        design, _ = and_design
        env = {"a": True, "b": True}
        # Breaking every programmed cell certainly cuts the path.
        faults = [Fault(r, c, STUCK_OFF) for r, c, _ in design.cells()]
        assert evaluate_with_faults(design, env, faults)["f"] is False

    def test_stuck_on_can_create_spurious_path(self, and_design):
        design, _ = and_design
        env = {"a": False, "b": False}
        # Shorting every crosspoint certainly connects input to output.
        faults = [
            Fault(r, c, STUCK_ON)
            for r in range(design.num_rows)
            for c in range(design.num_cols)
        ]
        assert evaluate_with_faults(design, env, faults)["f"] is True


class TestFunctionalCheck:
    def test_fault_free_design_is_functional(self, and_design):
        design, e = and_design
        assert is_functional_under_faults(
            design, lambda env: {"f": e.evaluate(env)}, ["a", "b"], []
        )

    def test_detects_broken_function(self, and_design):
        design, e = and_design
        programmed = list(design.cells())
        fault = Fault(programmed[0][0], programmed[0][1], STUCK_OFF)
        assert not is_functional_under_faults(
            design, lambda env: {"f": e.evaluate(env)}, ["a", "b"], [fault]
        )


class TestCriticalCells:
    def test_every_programmed_cell_is_stuck_off_critical_in_a_chain(self, and_design):
        """In f = a & b the conducting path is a single series chain:
        every programmed cell is critical for stuck-off."""
        design, e = and_design
        crit = critical_cells(
            design, lambda env: {"f": e.evaluate(env)}, ["a", "b"]
        )
        programmed = {(r, c) for r, c, _ in design.cells()}
        assert set(crit[STUCK_OFF]) == programmed

    def test_redundant_path_tolerates_stuck_off(self):
        """f = a | a-free path: an OR of two disjoint cubes keeps working
        when one parallel literal path keeps conducting."""
        e = parse("a | b")
        design = Compact(gamma=0.5).synthesize_expr(e, name="f").design
        crit = critical_cells(design, lambda env: {"f": e.evaluate(env)}, ["a", "b"])
        # The 'a' literal cell is critical only for assignments where b=0;
        # it IS critical overall (a=1, b=0 fails) — but at least the
        # analysis must terminate and report subsets of the cell space.
        assert set(crit[STUCK_ON]) <= {
            (r, c) for r in range(design.num_rows) for c in range(design.num_cols)
        }

    def test_stuck_on_unprogrammed_toggle(self, and_design):
        design, e = and_design
        with_unprog = critical_cells(
            design, lambda env: {"f": e.evaluate(env)}, ["a", "b"],
            kinds=(STUCK_ON,), include_unprogrammed=True,
        )
        only_prog = critical_cells(
            design, lambda env: {"f": e.evaluate(env)}, ["a", "b"],
            kinds=(STUCK_ON,), include_unprogrammed=False,
        )
        assert set(only_prog[STUCK_ON]) <= set(with_unprog[STUCK_ON])


class TestYield:
    def test_zero_defect_rate_gives_full_yield(self, and_design):
        design, e = and_design
        y = yield_estimate(
            design, lambda env: {"f": e.evaluate(env)}, ["a", "b"],
            p_stuck_on=0.0, p_stuck_off=0.0, trials=20,
        )
        assert y == 1.0

    def test_certain_defects_kill_yield(self, and_design):
        design, e = and_design
        y = yield_estimate(
            design, lambda env: {"f": e.evaluate(env)}, ["a", "b"],
            p_stuck_on=0.0, p_stuck_off=1.0, trials=10,
        )
        assert y == 0.0

    def test_yield_monotone_in_defect_rate(self):
        nl = c17()
        design = Compact(gamma=0.5).synthesize_netlist(nl).design
        lo = yield_estimate(design, nl.evaluate, nl.inputs,
                            p_stuck_off=0.005, trials=60, seed=7)
        hi = yield_estimate(design, nl.evaluate, nl.inputs,
                            p_stuck_off=0.2, trials=60, seed=7)
        assert hi <= lo

    def test_deterministic_for_seed(self):
        nl = decoder(3)
        design = Compact(gamma=0.5).synthesize_netlist(nl).design
        a = yield_estimate(design, nl.evaluate, nl.inputs, trials=30, seed=5)
        b = yield_estimate(design, nl.evaluate, nl.inputs, trials=30, seed=5)
        assert a == b

    def test_trials_validated(self, and_design):
        design, e = and_design
        with pytest.raises(ValueError):
            yield_estimate(design, lambda env: {"f": e.evaluate(env)}, ["a", "b"], trials=0)


class TestFaultBounds:
    def test_evaluate_rejects_out_of_bounds_fault(self, and_design):
        design, _ = and_design
        bad = Fault(design.num_rows, 0, STUCK_OFF)
        with pytest.raises(ValueError, match="outside"):
            evaluate_with_faults(design, {"a": True, "b": True}, [bad])

    def test_functional_check_rejects_out_of_bounds_fault(self, and_design):
        design, e = and_design
        bad = Fault(0, design.num_cols + 3, STUCK_ON)
        with pytest.raises(ValueError, match="outside"):
            is_functional_under_faults(
                design, lambda env: {"f": e.evaluate(env)}, ["a", "b"], [bad]
            )

    def test_message_names_coordinates_and_dims(self, and_design):
        design, _ = and_design
        bad = Fault(99, 7, STUCK_OFF)
        with pytest.raises(ValueError, match=r"\(99, 7\)"):
            evaluate_with_faults(design, {"a": True, "b": True}, [bad])


class TestFaultMap:
    def test_validates_dimensions(self):
        from repro.crossbar import FaultMap

        with pytest.raises(ValueError):
            FaultMap(0, 4, ())
        with pytest.raises(ValueError):
            FaultMap(4, -1, ())

    def test_rejects_out_of_bounds_faults(self):
        from repro.crossbar import FaultMap

        with pytest.raises(ValueError, match="outside"):
            FaultMap(4, 4, (Fault(4, 0, STUCK_OFF),))

    def test_rejects_conflicting_duplicates(self):
        from repro.crossbar import FaultMap

        with pytest.raises(ValueError, match="conflicting"):
            FaultMap(4, 4, (Fault(1, 1, STUCK_OFF), Fault(1, 1, STUCK_ON)))

    def test_restricted_drops_outside_faults(self):
        from repro.crossbar import FaultMap

        fm = FaultMap(6, 6, (Fault(1, 1, STUCK_OFF), Fault(5, 5, STUCK_ON)))
        sub = fm.restricted(4, 4)
        assert sub.rows == 4 and sub.cols == 4
        assert [f.row for f in sub.faults] == [1]

    def test_json_round_trip(self):
        from repro.crossbar import (
            FaultMap,
            fault_map_from_json,
            fault_map_to_json,
        )

        fm = FaultMap(5, 7, (Fault(0, 6, STUCK_ON), Fault(4, 2, STUCK_OFF)))
        again = fault_map_from_json(fault_map_to_json(fm))
        assert again == fm

    def test_from_json_rejects_wrong_format(self):
        from repro.crossbar import fault_map_from_json

        with pytest.raises(ValueError):
            fault_map_from_json('{"format": "something/else"}')


class TestRandomFaultMap:
    def test_deterministic_for_int_seed(self):
        from repro.crossbar import random_fault_map

        a = random_fault_map(20, 20, p_stuck_off=0.1, seed=4)
        b = random_fault_map(20, 20, p_stuck_off=0.1, seed=4)
        assert a == b

    def test_accepts_random_instance(self):
        import random

        from repro.crossbar import random_fault_map

        a = random_fault_map(20, 20, p_stuck_off=0.1, seed=random.Random(4))
        b = random_fault_map(20, 20, p_stuck_off=0.1, seed=random.Random(4))
        assert a == b

    def test_zero_rates_give_empty_map(self):
        from repro.crossbar import random_fault_map

        fm = random_fault_map(10, 10, p_stuck_on=0.0, p_stuck_off=0.0, seed=1)
        assert fm.faults == ()
        assert fm.density == 0.0


class TestSeedThreading:
    def test_yield_estimate_accepts_random_instance(self, and_design):
        import random

        design, e = and_design
        ref = lambda env: {"f": e.evaluate(env)}  # noqa: E731
        a = yield_estimate(design, ref, ["a", "b"], trials=20,
                           seed=random.Random(3))
        b = yield_estimate(design, ref, ["a", "b"], trials=20,
                           seed=random.Random(3))
        assert a == b

    def test_int_seed_path_unchanged(self, and_design):
        """Int seeds must keep their historical per-trial derivation."""
        design, e = and_design
        ref = lambda env: {"f": e.evaluate(env)}  # noqa: E731
        a = yield_estimate(design, ref, ["a", "b"], trials=15, seed=2)
        b = yield_estimate(design, ref, ["a", "b"], trials=15, seed=2)
        assert a == b
