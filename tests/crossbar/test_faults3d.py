"""Fault handling on layered designs: coordinates, bounds, evaluation."""

import pytest

from repro.circuits import c17
from repro.core import Compact
from repro.crossbar import (
    Fault,
    FaultMap,
    STUCK_OFF,
    STUCK_ON,
    batch_evaluate,
    bitset_evaluate,
    critical_cells,
    evaluate_with_faults,
    validate_under_faults,
    yield_estimate,
)
from repro.crossbar.batch import assignments_to_matrix
from tests.conftest import all_envs


@pytest.fixture(scope="module")
def layered():
    netlist = c17()
    design = Compact(layers=2).synthesize_netlist(netlist).design
    return netlist, design


class TestFaultLayerField:
    def test_default_layer_is_zero(self):
        assert Fault(1, 2, STUCK_ON).layer == 0

    def test_negative_layer_rejected(self):
        with pytest.raises(ValueError):
            Fault(1, 2, STUCK_ON, layer=-1)

    def test_fault_map_layer_bounds(self):
        with pytest.raises(ValueError, match="2-layer"):
            FaultMap(4, 4, (Fault(0, 0, STUCK_ON, layer=3),), layers=2)

    def test_fault_map_layers_below_one_rejected(self):
        with pytest.raises(ValueError):
            FaultMap(4, 4, (), layers=0)

    def test_same_site_different_layer_is_not_a_conflict(self):
        fmap = FaultMap(
            4, 4,
            (Fault(0, 0, STUCK_ON, layer=0), Fault(0, 0, STUCK_OFF, layer=1)),
            layers=2,
        )
        assert len(fmap.faults) == 2


class TestSignatureStability:
    def test_planar_signature_ignores_default_layers(self):
        faults = (Fault(1, 2, STUCK_OFF), Fault(0, 0, STUCK_ON))
        explicit = FaultMap(4, 4, tuple(
            Fault(f.row, f.col, f.kind, layer=0) for f in faults
        ), layers=1)
        assert FaultMap(4, 4, faults).signature() == explicit.signature()

    def test_layered_signature_differs(self):
        base = FaultMap(4, 4, (Fault(1, 2, STUCK_OFF),))
        layered = FaultMap(4, 4, (Fault(1, 2, STUCK_OFF, layer=1),), layers=2)
        assert base.signature() != layered.signature()


class TestBoundsAgainstDesigns:
    def test_layer_outside_design_rejected(self, layered):
        _, design = layered
        with pytest.raises(ValueError, match="2-layer"):
            evaluate_with_faults(design, {}, [Fault(0, 0, STUCK_ON, layer=5)])

    def test_site_outside_layer_planes_rejected(self, layered):
        _, design = layered
        big = max(design.plane_sizes) + 10
        with pytest.raises(ValueError, match="wire planes"):
            evaluate_with_faults(design, {}, [Fault(big, 0, STUCK_ON, layer=1)])


class TestFaultedEvaluation:
    def test_scalar_batch_bitset_agree_under_faults(self, layered):
        netlist, design = layered
        sites = [(l, r, c) for l, r, c, _lit in design.cells3d()]
        faults = [
            Fault(sites[0][1], sites[0][2], STUCK_OFF, layer=sites[0][0]),
            Fault(sites[-1][1], sites[-1][2], STUCK_ON, layer=sites[-1][0]),
        ]
        envs = list(all_envs(netlist.inputs))
        matrix = assignments_to_matrix(envs, netlist.inputs)
        batched = batch_evaluate(design, netlist.inputs, matrix, faults=faults)
        packed = bitset_evaluate(design, netlist.inputs, faults=faults)
        n = len(netlist.inputs)
        for i, env in enumerate(envs):
            scalar = evaluate_with_faults(design, env, faults)
            idx = sum(
                (1 << (n - 1 - j)) for j, name in enumerate(netlist.inputs)
                if env[name]
            )
            for out, value in scalar.items():
                assert bool(batched[out][i]) == value
                word, bit = divmod(idx, 64)
                assert bool((int(packed[out][word]) >> bit) & 1) == value

    def test_stuck_off_on_layer1_cell_changes_function(self, layered):
        netlist, design = layered
        upper = [
            (l, r, c) for l, r, c, lit in design.cells3d()
            if l == 1 and not lit.is_constant()
        ]
        assert upper, "2-layer c17 should program layer-1 cells"
        l, r, c = upper[0]
        fault = Fault(r, c, STUCK_OFF, layer=l)
        report = validate_under_faults(
            design, netlist.evaluate, netlist.inputs, [fault]
        )
        healthy = validate_under_faults(
            design, netlist.evaluate, netlist.inputs, []
        )
        assert healthy.ok
        # A literal-carrying cell is not always critical, but the faulted
        # verdict must at least be well-defined and reproducible.
        again = validate_under_faults(
            design, netlist.evaluate, netlist.inputs, [fault]
        )
        assert report.ok == again.ok


class TestAnalysesOnLayeredDesigns:
    def test_critical_cells_returns_triples(self, layered):
        netlist, design = layered
        critical = critical_cells(
            design, netlist.evaluate, netlist.inputs,
            include_unprogrammed=False,
        )
        programmed = {(l, r, c) for l, r, c, _ in design.cells3d()}
        for kind, sites in critical.items():
            assert all(len(site) == 3 for site in sites), kind
            assert set(sites) <= programmed

    def test_yield_estimate_runs(self, layered):
        netlist, design = layered
        result = yield_estimate(
            design, netlist.evaluate, netlist.inputs,
            p_stuck_on=0.01, p_stuck_off=0.05, trials=20, seed=3,
        )
        assert 0.0 <= result <= 1.0
