"""Unit tests for memristor cell literals."""

from repro.crossbar import OFF, ON, Lit


class TestConstants:
    def test_on_always_low_resistance(self):
        assert ON.evaluate({}) is True
        assert ON.is_constant()

    def test_off_always_high_resistance(self):
        assert OFF.evaluate({}) is False
        assert OFF.is_constant()

    def test_strings(self):
        assert str(ON) == "1" and str(OFF) == "0"


class TestLiterals:
    def test_positive(self):
        lit = Lit("x", True)
        assert lit.evaluate({"x": True}) and not lit.evaluate({"x": False})
        assert str(lit) == "x"

    def test_negative(self):
        lit = Lit("x", False)
        assert lit.evaluate({"x": False}) and not lit.evaluate({"x": True})
        assert str(lit) == "~x"

    def test_equality_and_hash(self):
        assert Lit("x", True) == Lit("x", True)
        assert Lit("x", True) != Lit("x", False)
        assert len({Lit("x", True), Lit("x", True)}) == 1

    def test_not_constant(self):
        assert not Lit("x", True).is_constant()

    def test_int_assignment_values(self):
        assert Lit("x", True).evaluate({"x": 1})
        assert Lit("x", False).evaluate({"x": 0})
