"""Tests for incremental programming schedules."""

import pytest

from repro import Compact
from repro.circuits import c17
from repro.crossbar import schedule_sequence
from repro.expr import parse


@pytest.fixture(scope="module")
def design():
    return Compact(gamma=0.5).synthesize_expr(parse("(a & b) | c"), name="f").design


class TestScheduleSequence:
    def test_empty_sequence(self, design):
        sched = schedule_sequence(design, [])
        assert sched.total_writes == 0 and sched.total_delay == 0

    def test_single_assignment_charges_initialization(self, design):
        env = {"a": True, "b": True, "c": False}
        sched = schedule_sequence(design, [env])
        on_count = len(design.program(env))
        assert sched.initial_cells == on_count
        assert sched.total_delay == sched.initial_rows + 1
        assert not sched.steps

    def test_identical_assignments_cost_one_step_each(self, design):
        env = {"a": True, "b": False, "c": True}
        sched = schedule_sequence(design, [env, env, env])
        for step in sched.steps:
            assert step.cells_written == 0
            assert step.rows_touched == 0
            assert step.delay_steps == 1  # evaluation only

    def test_single_variable_flip_touches_its_cells_only(self, design):
        e1 = {"a": True, "b": True, "c": False}
        e2 = {"a": True, "b": True, "c": True}
        sched = schedule_sequence(design, [e1, e2])
        step = sched.steps[0]
        # Only cells whose literal mentions c change state.
        c_cells = [
            (r, col) for r, col, lit in design.cells() if lit.var == "c"
        ]
        assert 0 < step.cells_written <= len(c_cells)

    def test_amortized_below_worst_case(self, design):
        import itertools

        envs = [
            dict(zip(["a", "b", "c"], bits))
            for bits in itertools.product([False, True], repeat=3)
        ]
        sched = schedule_sequence(design, envs)
        assert sched.amortized_delay <= sched.worst_case_delay
        # Worst case never exceeds the paper's static bound rows+1.
        assert sched.worst_case_delay <= design.num_rows + 1

    def test_assume_erased_toggle(self, design):
        env = {"a": False, "b": False, "c": False}
        erased = schedule_sequence(design, [env], assume_erased=True)
        full = schedule_sequence(design, [env], assume_erased=False)
        assert full.initial_cells == design.memristor_count
        assert erased.initial_cells <= full.initial_cells

    def test_streaming_on_c17(self):
        nl = c17()
        design = Compact(gamma=0.5).synthesize_netlist(nl).design
        import random

        rng = random.Random(0)
        envs = [
            {name: bool(rng.getrandbits(1)) for name in nl.inputs}
            for _ in range(32)
        ]
        sched = schedule_sequence(design, envs)
        assert len(sched.steps) == 31
        assert sched.total_writes >= sched.initial_cells
        # Incremental beats reprogramming everything every time.
        naive_writes = 32 * design.memristor_count
        assert sched.total_writes < naive_writes
