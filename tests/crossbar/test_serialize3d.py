"""Serialization tests for the layered (``repro.crossbar/2``) schema."""

import json

import pytest

from repro.circuits import c17
from repro.core import Compact
from repro.crossbar import (
    CrossbarDesign3D,
    Fault,
    FaultMap,
    Lit,
    ON,
    design_from_json,
    design_to_json,
    fault_map_from_json,
    fault_map_to_json,
    validate_design,
)


def layered_design():
    return Compact(layers=2).synthesize_netlist(c17()).design


class TestDesignRoundTrip:
    def test_v2_round_trip_preserves_function(self):
        netlist = c17()
        design = Compact(layers=2).synthesize_netlist(netlist).design
        text = design_to_json(design, indent=2)
        payload = json.loads(text)
        assert payload["format"] == "repro.crossbar/2"
        assert payload["layers"] == 2
        back = design_from_json(text)
        assert isinstance(back, CrossbarDesign3D)
        assert back.plane_sizes == design.plane_sizes
        assert back.semiperimeter == design.semiperimeter
        assert validate_design(back, netlist.evaluate, netlist.inputs).ok

    def test_one_layer_design_emits_v1(self):
        design = Compact(layers=1).synthesize_netlist(c17()).design
        payload = json.loads(design_to_json(design))
        assert payload["format"] == "repro.crossbar/1"
        assert "layers" not in payload

    def test_cells_carry_layer_coordinates(self):
        design = layered_design()
        payload = json.loads(design_to_json(design))
        layers_seen = {cell["layer"] for cell in payload["cells"]}
        assert layers_seen == {0, 1}


class TestDesignSchemaErrors:
    def base_payload(self):
        return json.loads(design_to_json(layered_design()))

    def test_layers_below_one_rejected(self):
        payload = self.base_payload()
        payload["layers"] = 0
        payload["plane_sizes"] = payload["plane_sizes"][:1]
        with pytest.raises(ValueError, match="integer >= 1"):
            design_from_json(json.dumps(payload))

    def test_all_problems_reported_in_one_pass(self):
        payload = self.base_payload()
        payload["name"] = 7                      # not a string
        payload["rows"] = 999                    # footprint mismatch
        payload["input_row"] = -3                # outside plane 0
        payload["cells"][0]["row"] = 10_000      # outside its planes
        with pytest.raises(ValueError) as err:
            design_from_json(json.dumps(payload))
        message = str(err.value)
        assert "'name' must be a string" in message
        assert "'rows'" in message
        assert "input_row" in message
        assert "cells[0]" in message

    def test_plane_count_mismatch_rejected(self):
        payload = self.base_payload()
        payload["plane_sizes"] = payload["plane_sizes"] + [4]
        with pytest.raises(ValueError, match="nanowire planes"):
            design_from_json(json.dumps(payload))

    def test_duplicate_cell_rejected(self):
        payload = self.base_payload()
        payload["cells"].append(dict(payload["cells"][0]))
        with pytest.raises(ValueError, match="re-programs"):
            design_from_json(json.dumps(payload))


class TestMetaBlock:
    def test_certification_meta_survives_round_trip(self):
        design = layered_design()
        assert design.meta, "3D synthesis should stamp certification meta"
        assert "plane_method" in design.meta
        assert "certified_s_lb" in design.meta
        back = design_from_json(design_to_json(design))
        assert back.meta == design.meta

    def test_missing_meta_loads_as_empty(self):
        payload = json.loads(design_to_json(layered_design()))
        payload.pop("meta", None)
        back = design_from_json(json.dumps(payload))
        assert back.meta == {}

    def test_non_scalar_meta_value_rejected(self):
        payload = json.loads(design_to_json(layered_design()))
        payload["meta"] = {"plane_method": ["not", "a", "scalar"]}
        with pytest.raises(ValueError, match="meta"):
            design_from_json(json.dumps(payload))

    def test_non_dict_meta_rejected(self):
        payload = json.loads(design_to_json(layered_design()))
        payload["meta"] = "auto"
        with pytest.raises(ValueError, match="meta"):
            design_from_json(json.dumps(payload))


class TestPlaneLabels:
    def test_labels_survive_round_trip(self):
        design = layered_design()
        back = design_from_json(design_to_json(design))
        for plane, labels in enumerate(design.plane_labels):
            assert set(back.plane_labels[plane]) == set(labels)

    def test_row_col_label_aliasing_preserved(self):
        design = CrossbarDesign3D(
            "d", plane_sizes=[2, 1, 1], input_row=1, output_rows={"f": 0}
        )
        design.set_cell3(0, 1, 0, Lit("a", True))
        design.plane_labels[0][0] = "root"
        back = design_from_json(design_to_json(design))
        # row_labels is plane 0 and col_labels plane 1, by aliasing.
        assert back.row_labels is back.plane_labels[0]
        assert back.col_labels is back.plane_labels[1]
        assert back.row_labels[0] == repr("root")


class TestFaultMapLayers:
    def test_planar_map_round_trips_without_layer_fields(self):
        fmap = FaultMap(4, 4, (Fault(1, 2, "stuck_off"), Fault(0, 0, "stuck_on")))
        payload = json.loads(fault_map_to_json(fmap))
        assert "layers" not in payload
        assert all("layer" not in f for f in payload["faults"])
        back = fault_map_from_json(fault_map_to_json(fmap))
        assert set(back.faults) == set(fmap.faults)
        assert (back.rows, back.cols) == (fmap.rows, fmap.cols)
        assert back.signature() == fmap.signature()
        assert back.layers == 1

    def test_layered_map_round_trips(self):
        fmap = FaultMap(
            4, 4,
            (Fault(1, 2, "stuck_off", layer=1), Fault(0, 0, "stuck_on")),
            layers=2,
        )
        text = fault_map_to_json(fmap)
        payload = json.loads(text)
        assert payload["layers"] == 2
        back = fault_map_from_json(text)
        assert back.layers == 2
        assert sorted(f.layer for f in back.faults) == [0, 1]

    def test_layer_outside_map_rejected(self):
        fmap_json = json.dumps({
            "format": "repro.faults/1", "rows": 4, "cols": 4, "layers": 2,
            "faults": [{"row": 0, "col": 0, "kind": "stuck_on", "layer": 5}],
        })
        with pytest.raises(ValueError, match="layer 5"):
            fault_map_from_json(fmap_json)

    def test_bad_layer_count_rejected(self):
        fmap_json = json.dumps({
            "format": "repro.faults/1", "rows": 4, "cols": 4, "layers": 0,
            "faults": [],
        })
        with pytest.raises(ValueError, match="'layers'"):
            fault_map_from_json(fmap_json)
