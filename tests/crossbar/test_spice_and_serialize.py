"""Tests for SPICE export and JSON serialisation of designs."""

import json

import pytest

from repro import Compact
from repro.circuits import c17, decoder
from repro.crossbar import (
    AnalogParams,
    design_from_json,
    design_to_json,
    to_spice_netlist,
)
from tests.conftest import all_envs


@pytest.fixture(scope="module")
def c17_design():
    nl = c17()
    return nl, Compact(gamma=0.5).synthesize_netlist(nl).design


class TestSpiceExport:
    def test_deck_structure(self, c17_design):
        nl, design = c17_design
        env = {name: True for name in nl.inputs}
        deck = to_spice_netlist(design, env)
        assert deck.startswith("*")
        assert "Vin row" in deck
        assert deck.rstrip().endswith(".end")
        # One resistor per programmed cell.
        assert deck.count("\nRm") == design.memristor_count

    def test_sense_resistors_for_outputs(self, c17_design):
        nl, design = c17_design
        deck = to_spice_netlist(design, {name: False for name in nl.inputs})
        for out in nl.outputs:
            assert f"Rsense_{out}" in deck
            assert f"* output {out}" in deck

    def test_resistance_values_follow_assignment(self, c17_design):
        nl, design = c17_design
        params = AnalogParams(r_on=123.0, r_off=4.56e8)
        env_all = {name: True for name in nl.inputs}
        deck = to_spice_netlist(design, env_all, params)
        assert "123" in deck and "4.56e+08" in deck

    def test_assignment_recorded_in_comment(self, c17_design):
        nl, design = c17_design
        env = {name: i % 2 == 0 for i, name in enumerate(nl.inputs)}
        deck = to_spice_netlist(design, env)
        assert "* assignment:" in deck


class TestJsonSerialisation:
    def test_round_trip_preserves_function(self, c17_design):
        nl, design = c17_design
        back = design_from_json(design_to_json(design))
        for env in all_envs(nl.inputs):
            assert back.evaluate(env) == design.evaluate(env)

    def test_round_trip_preserves_metrics(self, c17_design):
        _nl, design = c17_design
        back = design_from_json(design_to_json(design))
        assert back.num_rows == design.num_rows
        assert back.num_cols == design.num_cols
        assert back.memristor_count == design.memristor_count
        assert back.literal_count == design.literal_count
        assert back.input_row == design.input_row
        assert back.output_rows == design.output_rows

    def test_json_is_valid_and_tagged(self, c17_design):
        _nl, design = c17_design
        payload = json.loads(design_to_json(design, indent=2))
        assert payload["format"] == "repro.crossbar/1"
        assert payload["rows"] == design.num_rows

    def test_wrong_format_rejected(self):
        with pytest.raises(ValueError, match="not a serialized"):
            design_from_json(json.dumps({"format": "other"}))

    def test_constant_outputs_round_trip(self):
        from repro.expr import parse

        res = Compact().synthesize_expr({"f": parse("a"), "z": parse("0")})
        back = design_from_json(design_to_json(res.design))
        assert back.evaluate({"a": False}) == {"f": False, "z": False}

    def test_multi_output_design(self):
        nl = decoder(3)
        design = Compact(gamma=0.5).synthesize_netlist(nl).design
        back = design_from_json(design_to_json(design))
        for env in all_envs(nl.inputs):
            assert back.evaluate(env) == nl.evaluate(env)
