"""Tests for the design validation harness."""

from repro import Compact
from repro.circuits import c17, priority_encoder
from repro.crossbar import CrossbarDesign, Lit, ON, validate_design


class TestValidateDesign:
    def test_reports_ok_for_correct_design(self, c17_netlist):
        res = Compact().synthesize_netlist(c17_netlist)
        rep = validate_design(res.design, c17_netlist.evaluate, c17_netlist.inputs)
        assert rep.ok and rep.exhaustive
        assert rep.checked == 2 ** len(c17_netlist.inputs)
        assert bool(rep) is True

    def test_finds_counterexample_in_broken_design(self):
        # Claims to compute a&b but actually computes a.
        d = CrossbarDesign("broken", 2, 1, input_row=1, output_rows={"f": 0})
        d.set_cell(1, 0, Lit("a", True))
        d.set_cell(0, 0, ON)
        rep = validate_design(
            d, lambda env: {"f": env["a"] and env["b"]}, ["a", "b"]
        )
        assert not rep.ok
        assert rep.counterexample is not None
        assert rep.mismatched_outputs == ("f",)
        env = rep.counterexample
        assert env["a"] and not env["b"]  # the only disagreeing assignment

    def test_monte_carlo_mode_beyond_limit(self):
        nl = priority_encoder(16)
        res = Compact(gamma=1.0, method="heuristic").synthesize_netlist(nl)
        rep = validate_design(
            res.design, nl.evaluate, nl.inputs, exhaustive_limit=8, samples=200
        )
        assert rep.ok and not rep.exhaustive
        assert rep.checked == 200

    def test_monte_carlo_deterministic_for_seed(self):
        nl = priority_encoder(16)
        res = Compact(gamma=1.0, method="heuristic").synthesize_netlist(nl)
        a = validate_design(res.design, nl.evaluate, nl.inputs, exhaustive_limit=4, samples=50, seed=1)
        b = validate_design(res.design, nl.evaluate, nl.inputs, exhaustive_limit=4, samples=50, seed=1)
        assert a.ok == b.ok and a.checked == b.checked
