"""Batch/bitset validation engines agree bit-for-bit with scalar loops.

The vectorized ``_run_validation`` rewrite must be observationally
identical to the old per-assignment implementation: same verdict, same
``checked`` count, same first counterexample, same mismatched-output
tuple — plus the missing-output fix (a dropped output net is a mismatch,
never an implicit False).
"""

import itertools
import random

import numpy as np
import pytest

from repro import Compact
from repro.circuits import Netlist, c17, decoder, mux_tree, random_netlist
from repro.crossbar import (
    Fault,
    STUCK_OFF,
    STUCK_ON,
    ValidationReport,
    batch_evaluate,
    bitset_evaluate,
    validate_design,
    validate_under_faults,
)
from repro.crossbar.faults import evaluate_with_faults
from repro import bitset
from tests.conftest import all_envs


def all_matrix(n):
    return np.array(
        list(itertools.product([False, True], repeat=n)), dtype=bool
    )


def synth(nl):
    return Compact(gamma=0.5).synthesize_netlist(nl).design


def random_faults(design, rng, count):
    """``count`` faults at distinct sites, mixed kinds, programmed or not."""
    sites = rng.sample(
        [(r, c) for r in range(design.num_rows) for c in range(design.num_cols)],
        count,
    )
    return [
        Fault(r, c, STUCK_ON if rng.random() < 0.5 else STUCK_OFF)
        for r, c in sites
    ]


def scalar_validate(design, reference, names, faults, exhaustive_limit, samples, seed):
    """The pre-vectorization reference loop (with the missing-output fix)."""
    n = len(names)
    exhaustive = n <= exhaustive_limit
    if exhaustive:
        envs = (dict(zip(names, bits))
                for bits in itertools.product([False, True], repeat=n))
        total = 1 << n
    else:
        rng = random.Random(seed)
        envs = [
            {name: bool(rng.getrandbits(1)) for name in names}
            for _ in range(samples)
        ]
        total = samples
    for k, env in enumerate(envs):
        expected = dict(reference(env))
        if faults:
            actual = evaluate_with_faults(design, env, faults)
        else:
            actual = design.evaluate(env)
        bad = tuple(
            out for out in expected
            if out not in actual or bool(expected[out]) != bool(actual[out])
        )
        if bad:
            return ValidationReport(False, k + 1, exhaustive, dict(env), bad)
    return ValidationReport(True, total, exhaustive)


CIRCUITS = [c17, lambda: decoder(3), lambda: mux_tree(2),
            lambda: random_netlist(5, 18, 3, seed=9)]


class TestBatchFaultParity:
    @pytest.mark.parametrize("factory", CIRCUITS)
    def test_batch_evaluate_matches_evaluate_with_faults(self, factory):
        nl = factory()
        design = synth(nl)
        rng = random.Random(42)
        X = all_matrix(len(nl.inputs))
        for _ in range(4):
            faults = random_faults(design, rng, 3)
            batch = batch_evaluate(design, nl.inputs, X, faults=faults)
            for i in range(X.shape[0]):
                env = dict(zip(nl.inputs, map(bool, X[i])))
                ref = evaluate_with_faults(design, env, faults)
                assert {k: bool(v[i]) for k, v in batch.items()} == ref, faults

    @pytest.mark.parametrize("factory", CIRCUITS)
    def test_bitset_evaluate_matches_scalar(self, factory):
        nl = factory()
        design = synth(nl)
        tables = bitset_evaluate(design, nl.inputs)
        for k, env in enumerate(all_envs(nl.inputs)):
            ref = design.evaluate(env)
            for out in ref:
                assert bitset.get_bit(tables[out], k) == ref[out]

    def test_bitset_evaluate_with_faults(self):
        nl = c17()
        design = synth(nl)
        rng = random.Random(7)
        for _ in range(4):
            faults = random_faults(design, rng, 3)
            tables = bitset_evaluate(design, nl.inputs, faults=faults)
            for k, env in enumerate(all_envs(nl.inputs)):
                ref = evaluate_with_faults(design, env, faults)
                for out in ref:
                    assert bitset.get_bit(tables[out], k) == ref[out], faults

    def test_last_fault_at_site_wins(self):
        """Duplicate faults at one site follow evaluate_with_faults:
        the last one in the sequence decides."""
        nl = c17()
        design = synth(nl)
        site = (0, 0)
        faults = [Fault(*site, STUCK_ON), Fault(*site, STUCK_OFF)]
        X = all_matrix(len(nl.inputs))
        batch = batch_evaluate(design, nl.inputs, X, faults=faults)
        for i in range(X.shape[0]):
            env = dict(zip(nl.inputs, map(bool, X[i])))
            ref = evaluate_with_faults(design, env, faults)
            assert {k: bool(v[i]) for k, v in batch.items()} == ref


class TestNetlistBatchParity:
    @pytest.mark.parametrize(
        "factory", CIRCUITS + [lambda: random_netlist(6, 30, 4, seed=3)]
    )
    def test_evaluate_batch_matches_scalar(self, factory):
        nl = factory()
        X = all_matrix(len(nl.inputs))
        batch = nl.evaluate_batch(X, nl.inputs)
        for i, env in enumerate(all_envs(nl.inputs)):
            assert {k: bool(v[i]) for k, v in batch.items()} == nl.evaluate(env)

    @pytest.mark.parametrize(
        "factory", CIRCUITS + [lambda: random_netlist(6, 30, 4, seed=3)]
    )
    def test_evaluate_bitset_matches_scalar(self, factory):
        nl = factory()
        tables = nl.evaluate_bitset(nl.inputs)
        for k, env in enumerate(all_envs(nl.inputs)):
            ref = nl.evaluate(env)
            for out in nl.outputs:
                assert bitset.get_bit(tables[out], k) == ref[out]

    def test_evaluate_batch_rejects_missing_input(self):
        nl = c17()
        X = all_matrix(len(nl.inputs) - 1)
        with pytest.raises(ValueError):
            nl.evaluate_batch(X, nl.inputs)
        with pytest.raises(KeyError):
            nl.evaluate_batch(all_matrix(4), nl.inputs[:4])


class TestValidateParity:
    @pytest.mark.parametrize("factory", CIRCUITS)
    def test_clean_design_exhaustive(self, factory):
        nl = factory()
        design = synth(nl)
        report = validate_design(design, nl.evaluate, nl.inputs)
        oracle = scalar_validate(design, nl.evaluate, nl.inputs, None, 14, 2000, 0)
        assert report == oracle
        assert report.ok and report.exhaustive
        assert report.checked == 1 << len(nl.inputs)

    @pytest.mark.parametrize("factory", CIRCUITS)
    def test_under_faults_matches_scalar_loop(self, factory):
        """Verdict, checked count, counterexample and mismatched outputs
        are bit-identical to the per-assignment loop — and across enough
        random fault maps to see both verdicts."""
        nl = factory()
        design = synth(nl)
        rng = random.Random(11)
        for _ in range(8):
            faults = random_faults(design, rng, 2)
            report = validate_under_faults(design, nl.evaluate, nl.inputs, faults)
            oracle = scalar_validate(
                design, nl.evaluate, nl.inputs, faults, 12, 512, 0
            )
            assert report == oracle, faults

    def test_sampled_tier_matches_scalar_rng_stream(self):
        """Forcing the Monte-Carlo tier (exhaustive_limit=0) draws the
        same envs in the same order as the old scalar generator."""
        nl = c17()
        design = synth(nl)
        for seed in (0, 1, 2):
            report = validate_design(
                design, nl.evaluate, nl.inputs,
                exhaustive_limit=0, samples=64, seed=seed,
            )
            oracle = scalar_validate(
                design, nl.evaluate, nl.inputs, None, 0, 64, seed
            )
            assert report == oracle
            assert not report.exhaustive and report.checked == 64

    def test_sampled_counterexample_parity_under_faults(self):
        nl = decoder(3)
        design = synth(nl)
        rng = random.Random(23)
        for _ in range(6):
            faults = random_faults(design, rng, 3)
            report = validate_under_faults(
                design, nl.evaluate, nl.inputs, faults,
                exhaustive_limit=0, samples=128, seed=5,
            )
            oracle = scalar_validate(
                design, nl.evaluate, nl.inputs, faults, 0, 128, 5
            )
            assert report == oracle, faults

    def test_opaque_reference_matches_bound_method(self):
        """A lambda reference (no batch fast path) produces the same
        report as the recognized bound-method fast path."""
        nl = random_netlist(5, 18, 3, seed=9)
        design = synth(nl)
        fast = validate_design(design, nl.evaluate, nl.inputs)
        slow = validate_design(design, lambda env: nl.evaluate(env), nl.inputs)
        assert fast == slow

    def test_netlist_subclass_override_not_shortcut(self):
        """An overridden ``evaluate`` must be consulted, not bypassed by
        the base-class bitset sweep."""
        nl = c17()
        design = synth(nl)

        class Flipped(Netlist):
            def evaluate(self, env):
                out = super().evaluate(env)
                return {k: not v for k, v in out.items()}

        flipped = Flipped(nl.name, inputs=list(nl.inputs), outputs=list(nl.outputs))
        for gate in nl.gates:
            flipped.add_gate(gate.output, gate.gate_type, list(gate.inputs))
        report = validate_design(design, flipped.evaluate, nl.inputs)
        assert not report.ok
        assert report.checked == 1


class TestMissingOutputRegression:
    """A reference output the design never produces used to validate as
    an implicit False; it must now be reported as a mismatch by name."""

    def _ghost_reference(self, nl):
        return lambda env: {**nl.evaluate(env), "ghost": False}

    def test_exhaustive_tier_reports_ghost(self):
        nl = c17()
        design = synth(nl)
        report = validate_design(design, self._ghost_reference(nl), nl.inputs)
        assert not report.ok
        assert "ghost" in report.mismatched_outputs
        assert report.checked == 1  # fails on the very first assignment
        assert report.counterexample == {name: False for name in nl.inputs}

    def test_sampled_tier_reports_ghost(self):
        nl = c17()
        design = synth(nl)
        report = validate_design(
            design, self._ghost_reference(nl), nl.inputs,
            exhaustive_limit=0, samples=16,
        )
        assert not report.ok
        assert "ghost" in report.mismatched_outputs
        assert report.checked == 1

    def test_under_faults_reports_ghost(self):
        nl = c17()
        design = synth(nl)
        report = validate_under_faults(
            design, self._ghost_reference(nl), nl.inputs,
            [Fault(0, 0, STUCK_OFF)],
        )
        assert not report.ok
        assert "ghost" in report.mismatched_outputs

    def test_bound_sbdd_reference_ghost_free_still_passes(self):
        """Control: the same design with its honest reference stays ok."""
        nl = c17()
        design = synth(nl)
        assert validate_design(design, nl.evaluate, nl.inputs).ok
