"""Tests for device-variation robustness analysis."""

import pytest

from repro import Compact
from repro.circuits import c17
from repro.crossbar import (
    AnalogParams,
    VariationParams,
    simulate_with_variation,
    variation_sweep,
)
from repro.expr import parse


@pytest.fixture(scope="module")
def design():
    return Compact(gamma=0.5).synthesize_expr(parse("(a & b) | c"), name="f").design


class TestSimulateWithVariation:
    def test_zero_sigma_matches_nominal(self, design):
        from repro.crossbar import simulate

        env = {"a": True, "b": True, "c": False}
        nominal = simulate(design, env)
        varied = simulate_with_variation(
            design, env, variation=VariationParams(0.0, 0.0)
        )
        for out, v in varied.items():
            assert v == pytest.approx(nominal.voltages[out], rel=1e-9)

    def test_deterministic_for_seed(self, design):
        env = {"a": True, "b": False, "c": True}
        a = simulate_with_variation(design, env, seed=3)
        b = simulate_with_variation(design, env, seed=3)
        assert a == b

    def test_different_seeds_differ(self, design):
        env = {"a": True, "b": False, "c": True}
        a = simulate_with_variation(design, env, seed=1)
        b = simulate_with_variation(design, env, seed=2)
        assert a != b

    def test_moderate_variation_keeps_logic(self, design):
        params = AnalogParams()
        for env in ({"a": 1, "b": 1, "c": 0}, {"a": 0, "b": 0, "c": 0}):
            expected = design.evaluate(env)["f"]
            v = simulate_with_variation(design, env, params, VariationParams(0.3, 0.3), seed=5)
            assert (v["f"] > 0.5) == expected


class TestVariationSweep:
    def test_report_fields(self, design):
        report = variation_sweep(design, ["a", "b", "c"], trials=5, n_assignments=8)
        assert report.trials == 5
        assert 0.0 <= report.correct_fraction <= 1.0
        assert report.correct_fraction > 0.95  # 10^6 on/off ratio: robust
        assert report.worst_margin > 0.0

    def test_extreme_variation_hurts_margin(self, design):
        mild = variation_sweep(
            design, ["a", "b", "c"], trials=5, n_assignments=8,
            variation=VariationParams(0.05, 0.05), seed=2,
        )
        wild = variation_sweep(
            design, ["a", "b", "c"], trials=5, n_assignments=8,
            variation=VariationParams(1.5, 1.5), seed=2,
        )
        assert wild.worst_margin <= mild.worst_margin

    def test_c17_robust_at_default_spread(self):
        nl = c17()
        design = Compact(gamma=0.5).synthesize_netlist(nl).design
        report = variation_sweep(design, nl.inputs, trials=4, n_assignments=8)
        assert report.correct_fraction == 1.0
