"""Unit tests for the Boolean expression AST."""

import pytest

from repro.expr import (
    FALSE,
    TRUE,
    And,
    Const,
    Ite,
    Not,
    Or,
    Var,
    Xor,
    all_assignments,
)


class TestVar:
    def test_evaluate(self):
        assert Var("a").evaluate({"a": True})
        assert not Var("a").evaluate({"a": False})

    def test_accepts_int_values(self):
        assert Var("a").evaluate({"a": 1})
        assert not Var("a").evaluate({"a": 0})

    def test_missing_variable_raises(self):
        with pytest.raises(KeyError, match="missing variable 'a'"):
            Var("a").evaluate({"b": True})

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Var("")

    def test_equality_and_hash(self):
        assert Var("x") == Var("x")
        assert Var("x") != Var("y")
        assert hash(Var("x")) == hash(Var("x"))
        assert len({Var("x"), Var("x"), Var("y")}) == 2

    def test_variables(self):
        assert Var("q").variables() == frozenset({"q"})


class TestConst:
    def test_true_false_singletons(self):
        assert TRUE.evaluate({}) is True
        assert FALSE.evaluate({}) is False

    def test_equality(self):
        assert Const(True) == TRUE
        assert Const(False) == FALSE
        assert TRUE != FALSE

    def test_no_variables(self):
        assert TRUE.variables() == frozenset()


class TestNot:
    def test_double_negation_collapses(self):
        assert Not(Not(Var("x"))) == Var("x")

    def test_constant_folding(self):
        assert Not(TRUE) == FALSE
        assert Not(FALSE) == TRUE

    def test_evaluate(self):
        assert Not(Var("x")).evaluate({"x": False})

    def test_invert_operator(self):
        assert ~Var("x") == Not(Var("x"))


class TestAnd:
    def test_flattening(self):
        e = And(And(Var("a"), Var("b")), Var("c"))
        assert e == And(Var("a"), Var("b"), Var("c"))

    def test_identity_dropped(self):
        assert And(TRUE, Var("x")) == Var("x")

    def test_absorbing(self):
        assert And(Var("x"), FALSE) == FALSE

    def test_empty_is_true(self):
        assert And() == TRUE

    def test_evaluate(self):
        e = And(Var("a"), Var("b"))
        assert e.evaluate({"a": True, "b": True})
        assert not e.evaluate({"a": True, "b": False})

    def test_operator(self):
        assert (Var("a") & Var("b")) == And(Var("a"), Var("b"))

    def test_type_error(self):
        with pytest.raises(TypeError):
            And(Var("a"), "b")


class TestOr:
    def test_identity_dropped(self):
        assert Or(FALSE, Var("x")) == Var("x")

    def test_absorbing(self):
        assert Or(Var("x"), TRUE) == TRUE

    def test_empty_is_false(self):
        assert Or() == FALSE

    def test_evaluate(self):
        e = Or(Var("a"), Var("b"))
        assert e.evaluate({"a": False, "b": True})
        assert not e.evaluate({"a": False, "b": False})

    def test_operator(self):
        assert (Var("a") | Var("b")) == Or(Var("a"), Var("b"))


class TestXor:
    def test_parity_semantics(self):
        e = Xor(Var("a"), Var("b"), Var("c"))
        assert e.evaluate({"a": 1, "b": 1, "c": 1})
        assert not e.evaluate({"a": 1, "b": 1, "c": 0})

    def test_constant_absorption(self):
        assert Xor(TRUE, Var("x")) == Not(Var("x"))
        assert Xor(FALSE, Var("x")) == Var("x")

    def test_empty(self):
        assert Xor() == FALSE
        assert Xor(TRUE) == TRUE

    def test_operator(self):
        e = Var("a") ^ Var("b")
        assert e.evaluate({"a": 1, "b": 0})


class TestIte:
    def test_constant_condition(self):
        assert Ite(TRUE, Var("a"), Var("b")) == Var("a")
        assert Ite(FALSE, Var("a"), Var("b")) == Var("b")

    def test_equal_branches(self):
        assert Ite(Var("c"), Var("a"), Var("a")) == Var("a")

    def test_evaluate(self):
        e = Ite(Var("c"), Var("a"), Var("b"))
        assert e.evaluate({"c": 1, "a": 1, "b": 0})
        assert not e.evaluate({"c": 0, "a": 1, "b": 0})

    def test_variables(self):
        e = Ite(Var("c"), Var("a"), Var("b"))
        assert e.variables() == frozenset({"a", "b", "c"})


class TestHelpers:
    def test_substitute(self):
        e = And(Var("a"), Var("b"))
        assert e.substitute({"a": TRUE}) == Var("b")

    def test_cofactor(self):
        e = Or(And(Var("a"), Var("b")), Var("c"))
        assert e.cofactor("a", True) == Or(Var("b"), Var("c"))
        assert e.cofactor("a", False) == Var("c")

    def test_truth_table(self):
        e = And(Var("a"), Var("b"))
        assert e.truth_table(["a", "b"]) == [False, False, False, True]

    def test_equivalent(self):
        de_morgan_lhs = Not(And(Var("a"), Var("b")))
        de_morgan_rhs = Or(Not(Var("a")), Not(Var("b")))
        assert de_morgan_lhs.equivalent(de_morgan_rhs)
        assert not Var("a").equivalent(Var("b"))

    def test_size_and_depth(self):
        e = And(Var("a"), Not(Var("b")))
        assert e.size() == 4
        assert e.depth() == 2
        assert Var("a").depth() == 0

    def test_all_assignments_order(self):
        envs = list(all_assignments(["a", "b"]))
        assert envs[0] == {"a": False, "b": False}
        assert envs[-1] == {"a": True, "b": True}
        assert len(envs) == 4
