"""Tests for the Quine-McCluskey two-level minimizer."""

import itertools

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.expr import (
    cube_to_expr,
    minimize_expr,
    minimize_truth_table,
    parse,
    prime_implicants,
)


class TestPrimeImplicants:
    def test_textbook_example(self):
        # f(w,x,y,z) with ON = {4,8,10,11,12,15}, DC = {9,14}: classic QM.
        primes = prime_implicants([4, 8, 10, 11, 12, 15], [9, 14], n=4)
        assert "1-1-" in primes  # w·y
        assert "-100" in primes  # x·y'·z'
        assert "1--0" in primes or "10--" in primes

    def test_full_cube(self):
        primes = prime_implicants(range(8), n=3)
        assert primes == {"---"}

    def test_single_minterm(self):
        assert prime_implicants([5], n=3) == {"101"}

    def test_empty(self):
        assert prime_implicants([], n=3) == set()

    def test_dc_only_primes_dropped(self):
        # ON={0}, DC={1}: prime '00-' covers ON; no prime should cover
        # only the don't-care.
        primes = prime_implicants([0], [1], n=2)
        assert all(p != "01" for p in primes)


def cover_evaluates(cubes, minterms, n):
    got = set()
    for m in range(1 << n):
        bits = format(m, f"0{n}b")
        if any(all(c in ("-", b) for c, b in zip(cube, bits)) for cube in cubes):
            got.add(m)
    return got


class TestMinimizeTruthTable:
    @pytest.mark.parametrize("exact", [False, True])
    def test_cover_is_correct(self, exact):
        ons = [0, 1, 2, 5, 6, 7]
        cubes = minimize_truth_table(ons, n=3, exact=exact)
        assert cover_evaluates(cubes, ons, 3) == set(ons)

    def test_exact_never_larger_than_greedy(self):
        import random

        for seed in range(6):
            rng = random.Random(seed)
            ons = sorted(rng.sample(range(16), rng.randint(3, 12)))
            greedy = minimize_truth_table(ons, n=4, exact=False)
            exact = minimize_truth_table(ons, n=4, exact=True)
            assert len(exact) <= len(greedy)
            assert cover_evaluates(exact, ons, 4) == set(ons)

    def test_dont_cares_reduce_cubes(self):
        no_dc = minimize_truth_table([1, 3], n=3)
        with_dc = minimize_truth_table([1, 3], dont_cares=[5, 7], n=3)
        assert len(with_dc) <= len(no_dc)
        # With DCs {5,7}, a single cube '--1' (bit0 = 1) suffices.
        assert with_dc == ["--1"]

    def test_empty_onset(self):
        assert minimize_truth_table([], n=3) == []


class TestMinimizeExpr:
    @pytest.mark.parametrize(
        "text",
        ["a & b | a & ~b", "(a | b) & (a | ~b)", "a ^ b", "a & b & c | a & b & ~c",
         "(a & b) | (~a & b) | (a & ~b)"],
    )
    @pytest.mark.parametrize("exact", [False, True])
    def test_equivalence_preserved(self, text, exact):
        e = parse(text)
        m = minimize_expr(e, exact=exact)
        assert e.equivalent(m), (text, m)

    def test_absorbs_redundancy(self):
        # a&b | a&~b == a: one literal after minimization.
        m = minimize_expr(parse("a & b | a & ~b"))
        assert repr(m) == "a"

    def test_constants(self):
        from repro.expr import FALSE, TRUE

        assert minimize_expr(parse("a & ~a")) == FALSE
        assert minimize_expr(parse("a | ~a")) == TRUE

    def test_cube_to_expr(self):
        e = cube_to_expr("1-0", ["x", "y", "z"])
        assert e.evaluate({"x": 1, "y": 0, "z": 0})
        assert e.evaluate({"x": 1, "y": 1, "z": 0})
        assert not e.evaluate({"x": 1, "y": 1, "z": 1})


@settings(max_examples=40, deadline=None)
@given(st.sets(st.integers(0, 15)))
def test_minimize_property(ons):
    cubes = minimize_truth_table(sorted(ons), n=4)
    assert cover_evaluates(cubes, ons, 4) == set(ons)


@settings(max_examples=25, deadline=None)
@given(st.sets(st.integers(0, 15), min_size=1), st.sets(st.integers(0, 15)))
def test_minimize_with_dont_cares_property(ons, dcs):
    dcs = dcs - ons
    cubes = minimize_truth_table(sorted(ons), sorted(dcs), n=4)
    covered = cover_evaluates(cubes, ons, 4)
    assert set(ons) <= covered          # every ON-minterm covered
    assert covered <= set(ons) | dcs    # nothing outside ON u DC
