"""Unit tests for the Boolean expression parser."""

import pytest

from repro.expr import FALSE, TRUE, And, Not, Or, ParseError, Var, Xor, parse


class TestBasics:
    def test_single_variable(self):
        assert parse("alpha") == Var("alpha")

    def test_constants(self):
        assert parse("1") == TRUE
        assert parse("0") == FALSE

    def test_and(self):
        assert parse("a & b") == And(Var("a"), Var("b"))

    def test_or(self):
        assert parse("a | b") == Or(Var("a"), Var("b"))

    def test_xor(self):
        assert parse("a ^ b") == Xor(Var("a"), Var("b"))

    def test_not(self):
        assert parse("~a") == Not(Var("a"))
        assert parse("!a") == Not(Var("a"))


class TestPrecedence:
    def test_and_binds_tighter_than_or(self):
        assert parse("a & b | c") == Or(And(Var("a"), Var("b")), Var("c"))

    def test_xor_between_and_and_or(self):
        e = parse("a | b ^ c & d")
        assert e == Or(Var("a"), Xor(Var("b"), And(Var("c"), Var("d"))))

    def test_parentheses_override(self):
        assert parse("a & (b | c)") == And(Var("a"), Or(Var("b"), Var("c")))

    def test_not_binds_tightest(self):
        assert parse("~a & b") == And(Not(Var("a")), Var("b"))
        assert parse("~(a & b)") == Not(And(Var("a"), Var("b")))


class TestAlternateSyntax:
    def test_keywords(self):
        assert parse("a and b or not c").equivalent(parse("(a & b) | ~c"))

    def test_plus_and_star(self):
        assert parse("a*b + c") == parse("a&b | c")

    def test_postfix_prime(self):
        assert parse("a'") == Not(Var("a"))
        assert parse("a'' ") == Var("a")

    def test_juxtaposition_conjunction(self):
        assert parse("a b c") == And(Var("a"), Var("b"), Var("c"))
        assert parse("a b' + c").equivalent(parse("(a & ~b) | c"))

    def test_bus_style_names(self):
        assert parse("data[3] & u1.q") == And(Var("data[3]"), Var("u1.q"))


class TestErrors:
    def test_empty(self):
        with pytest.raises(ParseError):
            parse("")

    def test_trailing_garbage(self):
        with pytest.raises(ParseError, match="trailing"):
            parse("a )")

    def test_unclosed_paren(self):
        with pytest.raises(ParseError):
            parse("(a & b")

    def test_bad_character(self):
        with pytest.raises(ParseError):
            parse("a @ b")

    def test_dangling_operator(self):
        with pytest.raises(ParseError):
            parse("a &")

    def test_error_reports_position(self):
        with pytest.raises(ParseError) as info:
            parse("a @ b")
        assert info.value.pos == 2


class TestSemantics:
    @pytest.mark.parametrize(
        "text,env,expected",
        [
            ("(a & b) | c", {"a": 1, "b": 1, "c": 0}, True),
            ("(a & b) | c", {"a": 0, "b": 1, "c": 0}, False),
            ("a ^ b ^ c", {"a": 1, "b": 1, "c": 1}, True),
            ("~(a | b)", {"a": 0, "b": 0}, True),
            ("1 & a", {"a": 0}, False),
            ("0 | a", {"a": 1}, True),
        ],
    )
    def test_evaluation(self, text, env, expected):
        assert parse(text).evaluate(env) is expected
