"""Property-based tests for expressions (hypothesis)."""

import hypothesis.strategies as st
from hypothesis import assume, given, settings

from repro.expr import And, Expr, Ite, Not, Or, Var, Xor, parse

NAMES = ["a", "b", "c", "d"]


@st.composite
def exprs(draw, depth=3) -> Expr:
    if depth == 0 or draw(st.booleans()):
        return Var(draw(st.sampled_from(NAMES)))
    kind = draw(st.sampled_from(["not", "and", "or", "xor", "ite"]))
    if kind == "not":
        return Not(draw(exprs(depth=depth - 1)))
    if kind == "ite":
        return Ite(
            draw(exprs(depth=depth - 1)),
            draw(exprs(depth=depth - 1)),
            draw(exprs(depth=depth - 1)),
        )
    ctor = {"and": And, "or": Or, "xor": Xor}[kind]
    n = draw(st.integers(2, 3))
    return ctor(*[draw(exprs(depth=depth - 1)) for _ in range(n)])


envs = st.fixed_dictionaries({name: st.booleans() for name in NAMES})


@given(exprs(), envs)
def test_double_negation_preserves_semantics(e, env):
    assert Not(Not(e)).evaluate(env) == e.evaluate(env)


@given(exprs(), exprs(), envs)
def test_de_morgan(e1, e2, env):
    lhs = Not(And(e1, e2))
    rhs = Or(Not(e1), Not(e2))
    assert lhs.evaluate(env) == rhs.evaluate(env)


@given(exprs(), exprs(), envs)
def test_xor_definition(e1, e2, env):
    lhs = Xor(e1, e2)
    rhs = Or(And(e1, Not(e2)), And(Not(e1), e2))
    assert lhs.evaluate(env) == rhs.evaluate(env)


@given(exprs(), envs)
def test_shannon_expansion(e, env):
    name = NAMES[0]
    expanded = Ite(Var(name), e.cofactor(name, True), e.cofactor(name, False))
    assert expanded.evaluate(env) == e.evaluate(env)


@given(exprs(), envs)
def test_repr_round_trips_through_parser(e, env):
    # Ite has no surface syntax; everything else parses back.
    assume("ite(" not in repr(e))
    reparsed = parse(repr(e))
    assert reparsed.evaluate(env) == e.evaluate(env)


@given(exprs())
def test_variables_subset_of_names(e):
    assert e.variables() <= set(NAMES)


@settings(max_examples=50)
@given(exprs(), envs)
def test_substitution_respects_evaluation(e, env):
    # Substituting a variable by a constant equals evaluating with it fixed.
    name = NAMES[0]
    from repro.expr import FALSE, TRUE

    fixed = e.substitute({name: TRUE if env[name] else FALSE})
    assert fixed.evaluate(env) == e.evaluate(env)
