"""Tests for 2-coloring, products, vertex cover and OCT (with networkx
cross-checks and brute force)."""

import itertools
import random

import networkx as nx
import pytest

from repro.graphs import (
    UGraph,
    cartesian_product_k2,
    find_odd_cycle,
    greedy_oct,
    greedy_vertex_cover,
    is_bipartite,
    minimum_vertex_cover,
    nt_kernelize,
    odd_cycle_transversal,
    two_color,
    verify_oct,
)


def cycle(n):
    g = UGraph()
    for i in range(n):
        g.add_edge(i, (i + 1) % n)
    return g


def complete(n):
    g = UGraph()
    for i in range(n):
        for j in range(i + 1, n):
            g.add_edge(i, j)
    return g


def random_graph(n, p, seed):
    rng = random.Random(seed)
    g = UGraph()
    for i in range(n):
        g.add_node(i)
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < p:
                g.add_edge(i, j)
    return g


def to_nx(g):
    out = nx.Graph()
    out.add_nodes_from(g.nodes())
    out.add_edges_from(g.edges())
    return out


class TestTwoColor:
    def test_even_cycle_colors(self):
        coloring = two_color(cycle(6))
        assert coloring is not None
        for u, v in cycle(6).edges():
            assert coloring[u] != coloring[v]

    def test_odd_cycle_fails(self):
        assert two_color(cycle(5)) is None

    def test_subset_restriction(self):
        g = cycle(5)
        assert two_color(g, nodes={0, 1, 2, 3}) is not None

    def test_seed_colors_respected(self):
        g = cycle(4)
        coloring = two_color(g, seed_colors={0: 1})
        assert coloring[0] == 1 and coloring[1] == 0

    def test_conflicting_seeds_fail(self):
        g = cycle(4)
        # 0 and 1 are adjacent; same pinned color is unsatisfiable.
        start = sorted(g.nodes())[0]
        assert two_color(g, seed_colors={start: 0, 1: 0}) is None

    @pytest.mark.parametrize("pin", [0, 1])
    def test_pin_away_from_bfs_start_is_satisfiable(self, pin):
        # Regression: a pin on a node the BFS would not start from used
        # to be reported as a conflict (the component started at color 0
        # arbitrarily).  Both pin orientations must flip the component.
        g = UGraph()
        g.add_edge("a", "b")
        coloring = two_color(g, seed_colors={"b": pin})
        assert coloring == {"a": 1 - pin, "b": pin}

    def test_pin_deep_in_component(self):
        g = UGraph()
        for u, v in (("a", "b"), ("b", "c"), ("c", "d")):
            g.add_edge(u, v)
        coloring = two_color(g, seed_colors={"d": 0})
        assert coloring == {"a": 1, "b": 0, "c": 1, "d": 0}

    def test_consistent_pins_on_both_sides(self):
        g = cycle(6)
        coloring = two_color(g, seed_colors={1: 0, 4: 1})
        assert coloring is not None
        assert coloring[1] == 0 and coloring[4] == 1
        for u, v in cycle(6).edges():
            assert coloring[u] != coloring[v]

    def test_odd_path_between_pins_still_fails(self):
        g = UGraph()
        for u, v in (("a", "b"), ("b", "c"), ("c", "d")):
            g.add_edge(u, v)
        # a and d are an odd path apart: equal pins are contradictory.
        assert two_color(g, seed_colors={"a": 0, "d": 0}) is None

    @pytest.mark.parametrize("seed", range(8))
    def test_matches_networkx(self, seed):
        g = random_graph(10, 0.3, seed)
        assert is_bipartite(g) == nx.is_bipartite(to_nx(g))


class TestFindOddCycle:
    def test_none_for_bipartite(self):
        assert find_odd_cycle(cycle(8)) is None

    @pytest.mark.parametrize("seed", range(6))
    def test_returns_genuine_odd_cycle(self, seed):
        g = random_graph(9, 0.35, seed)
        cyc = find_odd_cycle(g)
        if cyc is None:
            assert is_bipartite(g)
        else:
            assert len(cyc) % 2 == 1
            for i, v in enumerate(cyc):
                assert g.has_edge(v, cyc[(i + 1) % len(cyc)])


class TestProduct:
    def test_k2_product_structure(self):
        g = cycle(3)
        p = cartesian_product_k2(g)
        assert len(p) == 6
        # |E(P)| = 2|E(G)| + |V(G)|
        assert p.num_edges() == 2 * 3 + 3
        assert p.has_edge((0, 0), (0, 1))
        assert p.has_edge((0, 0), (1, 0))
        assert not p.has_edge((0, 0), (1, 1))

    def test_matches_networkx_product(self):
        g = random_graph(7, 0.4, 3)
        p = cartesian_product_k2(g)
        k2 = nx.Graph([(0, 1)])
        ref = nx.cartesian_product(to_nx(g), k2)
        assert p.num_edges() == ref.number_of_edges()
        assert len(p) == ref.number_of_nodes()


def brute_vertex_cover(g):
    nodes = list(g.nodes())
    for k in range(len(nodes) + 1):
        for combo in itertools.combinations(nodes, k):
            s = set(combo)
            if all(u in s or v in s for u, v in g.edges()):
                return k
    return len(nodes)


class TestVertexCover:
    def test_greedy_is_a_cover(self):
        g = random_graph(12, 0.3, 5)
        cover = greedy_vertex_cover(g)
        assert all(u in cover or v in cover for u, v in g.edges())

    def test_known_instances(self):
        assert len(minimum_vertex_cover(cycle(5)).cover) == 3
        assert len(minimum_vertex_cover(cycle(6)).cover) == 3
        assert len(minimum_vertex_cover(complete(5)).cover) == 4

    def test_empty_graph(self):
        assert minimum_vertex_cover(UGraph()).cover == set()

    def test_edgeless_graph(self):
        g = UGraph()
        g.add_node(1)
        g.add_node(2)
        assert minimum_vertex_cover(g).cover == set()

    @pytest.mark.parametrize("backend", ["highs", "bnb"])
    @pytest.mark.parametrize("seed", range(5))
    def test_optimal_vs_brute_force(self, backend, seed):
        g = random_graph(9, 0.35, seed)
        result = minimum_vertex_cover(g, backend=backend)
        assert result.optimal
        assert len(result.cover) == brute_vertex_cover(g)
        assert all(u in result.cover or v in result.cover for u, v in g.edges())

    def test_kernelization_sound(self):
        for seed in range(5):
            g = random_graph(10, 0.3, seed + 100)
            forced_in, forced_out, kernel, lp = nt_kernelize(g)
            # NT: forced_in + optimal kernel cover is globally optimal.
            with_kernel = minimum_vertex_cover(g, use_kernelization=True)
            without = minimum_vertex_cover(g, use_kernelization=False)
            assert len(with_kernel.cover) == len(without.cover)
            assert lp <= len(without.cover) + 1e-9
            assert forced_in.isdisjoint(forced_out)

    def test_kernelization_half_integral_partition(self):
        # The dual-simplex LP must land on a vertex of the polytope,
        # where every value is in {0, 1/2, 1}: the three classes then
        # partition the node set exactly (a non-half-integral value
        # would have raised inside nt_kernelize).
        for seed in range(8):
            g = random_graph(12, 0.3, seed + 200)
            forced_in, forced_out, kernel, lp = nt_kernelize(g)
            classes = [forced_in, forced_out, set(kernel.nodes())]
            assert set().union(*classes) == set(g.nodes())
            assert sum(len(c) for c in classes) == len(list(g.nodes()))
            # LP value of the half-integral solution: |in| + |kernel|/2.
            assert lp == pytest.approx(len(forced_in) + len(list(kernel.nodes())) / 2)

    def test_kernelization_star_forces_center(self):
        g = UGraph()
        for leaf in "abcde":
            g.add_edge("center", leaf)
        forced_in, forced_out, kernel, lp = nt_kernelize(g)
        assert forced_in == {"center"}
        assert forced_out == set("abcde")
        assert not list(kernel.nodes())
        assert lp == pytest.approx(1.0)

    def test_greedy_within_factor_two(self):
        for seed in range(5):
            g = random_graph(10, 0.35, seed + 50)
            exact = brute_vertex_cover(g)
            assert len(greedy_vertex_cover(g)) <= 2 * exact

    def test_no_kernelization_reports_proven_bound(self):
        # Regression: with kernelization disabled the result carried a
        # hardcoded lower_bound of 0.0 even when the MILP proved
        # optimality.
        res = minimum_vertex_cover(cycle(3), use_kernelization=False)
        assert res.optimal
        assert len(res.cover) == 2
        assert res.lower_bound == pytest.approx(2.0)

    def test_no_kernelization_bound_on_random_graphs(self):
        for seed in range(4):
            g = random_graph(9, 0.3, seed + 300)
            res = minimum_vertex_cover(g, use_kernelization=False)
            assert res.optimal
            assert res.lower_bound == pytest.approx(len(res.cover))

    def test_kernel_component_split_is_sound(self):
        # Two disjoint odd cycles: the 1/2-kernel splits into two
        # components solved as independent MILPs.
        g = cycle(5)
        for i in range(5):
            g.add_edge(100 + i, 100 + (i + 1) % 5)
        res = minimum_vertex_cover(g)
        assert res.optimal
        assert len(res.cover) == 6
        assert res.lower_bound == pytest.approx(6.0)
        par = minimum_vertex_cover(g, jobs=2)
        assert par.cover == res.cover


def brute_oct(g):
    nodes = list(g.nodes())
    for k in range(len(nodes) + 1):
        for combo in itertools.combinations(nodes, k):
            if two_color(g, set(nodes) - set(combo)) is not None:
                return k
    return len(nodes)


class TestOct:
    def test_bipartite_needs_nothing(self):
        r = odd_cycle_transversal(cycle(8))
        assert r.size == 0 and r.optimal
        for u, v in cycle(8).edges():
            assert r.coloring[u] != r.coloring[v]

    def test_odd_cycle_needs_one(self):
        r = odd_cycle_transversal(cycle(7))
        assert r.size == 1
        assert verify_oct(cycle(7), r.oct_set)

    def test_complete_graph(self):
        # K5 needs to drop 3 vertices to become bipartite.
        r = odd_cycle_transversal(complete(5))
        assert r.size == 3

    @pytest.mark.parametrize("backend", ["highs", "bnb"])
    @pytest.mark.parametrize("seed", range(4))
    def test_optimal_vs_brute_force(self, backend, seed):
        g = random_graph(8, 0.35, seed)
        r = odd_cycle_transversal(g, backend=backend)
        assert r.optimal
        assert r.size == brute_oct(g)
        assert verify_oct(g, r.oct_set)
        for u, v in g.edges():
            if u not in r.oct_set and v not in r.oct_set:
                assert r.coloring[u] != r.coloring[v]

    def test_greedy_is_valid_and_bounded(self):
        for seed in range(6):
            g = random_graph(10, 0.35, seed + 10)
            r = greedy_oct(g)
            assert verify_oct(g, r.oct_set)
            assert r.size >= brute_oct(g)
            for u, v in g.edges():
                if u not in r.oct_set and v not in r.oct_set:
                    assert r.coloring[u] != r.coloring[v]

    def test_lower_bound_consistent(self):
        g = random_graph(9, 0.4, 77)
        r = odd_cycle_transversal(g)
        assert r.lower_bound <= r.size + 1e-9

    @pytest.mark.parametrize("decompose", [True, False])
    def test_preempted_solve_bound_never_negative(self, decompose):
        # Regression: the greedy-repair fallback used to return the raw
        # ``vc.lower_bound - n``, which can go negative when the solve
        # is preempted before a useful dual bound exists.
        g = complete(5)
        r = odd_cycle_transversal(g, time_limit=0.0, decompose=decompose)
        assert verify_oct(g, r.oct_set)
        assert not r.optimal
        assert r.lower_bound >= 0.0
