"""Witness-carrying bounds (:mod:`repro.graphs.bounds`): math + verifiers."""

from __future__ import annotations

import json

import pytest

from repro.graphs.bounds import (
    fixed_split_capacity_bound,
    layered_capacity_bound,
    oct_certificate,
    odd_cycle_packing_witness,
    plane_counts,
    vc_lp_witness,
    verify_layered_certificate,
    verify_oct_certificate,
    verify_semiperimeter_certificate,
)
from repro.graphs.undirected import UGraph


def triangle(tag=""):
    g = UGraph()
    g.add_edge(f"a{tag}", f"b{tag}")
    g.add_edge(f"b{tag}", f"c{tag}")
    g.add_edge(f"c{tag}", f"a{tag}")
    return g


def two_triangles():
    g = triangle()
    for u, v in triangle("2").edges():
        g.add_edge(u, v)
    return g


class TestLpWitness:
    def test_witness_is_feasible_and_matches_value(self):
        g = triangle()
        value, matching = vc_lp_witness(g)
        load = {}
        for u, v, w in matching:
            assert g.has_edge(u, v)
            assert w >= 0
            load[u] = load.get(u, 0.0) + w
            load[v] = load.get(v, 0.0) + w
        assert all(weight <= 1.0 + 1e-6 for weight in load.values())
        assert value == pytest.approx(sum(w for _, _, w in matching))
        # The triangle's fractional matching number is 3/2.
        assert value == pytest.approx(1.5, abs=1e-6)

    def test_empty_graph(self):
        assert vc_lp_witness(UGraph()) == (0.0, [])


class TestPackingWitness:
    def test_cycles_are_disjoint_and_odd(self):
        cycles = odd_cycle_packing_witness(two_triangles())
        assert len(cycles) == 2
        seen = set()
        for cycle in cycles:
            assert len(cycle) % 2 == 1
            assert not seen & set(cycle)
            seen.update(cycle)

    def test_bipartite_graph_has_no_cycles(self):
        g = UGraph()
        g.add_edge("a", "b")
        g.add_edge("b", "c")
        assert odd_cycle_packing_witness(g) == []


class TestOctVerifier:
    def test_honest_certificate_verifies(self):
        g = two_triangles()
        cert = oct_certificate(g)
        assert cert["oct_lb"] >= 2
        assert verify_oct_certificate(g, cert) == []

    def test_json_round_trip_still_verifies(self):
        # check --json re-reads certificates whose tuples became lists.
        g = triangle()
        cert = json.loads(json.dumps(oct_certificate(g)))
        assert verify_oct_certificate(g, cert) == []

    def test_inflated_oct_lb_rejected(self):
        g = triangle()
        cert = oct_certificate(g)
        cert["oct_lb"] += 1
        failures = verify_oct_certificate(g, cert)
        assert any(f.startswith("oct_lb:") for f in failures)

    def test_tampered_cycle_rejected(self):
        g = two_triangles()
        cert = oct_certificate(g)
        cert["packing"][0] = ["a", "b", "c2"]  # non-edge a-c2
        failures = verify_oct_certificate(g, cert)
        assert any(f.startswith("packing:") for f in failures)

    def test_inflated_lp_duals_rejected(self):
        g = triangle()
        cert = oct_certificate(g)
        for witness in cert["lp_witnesses"]:
            witness["matching"] = [
                [u, v, w * 3.0] for u, v, w in witness["matching"]
            ]
        cert["lp_lb"] = cert["n"]
        cert["oct_lb"] = cert["n"]
        failures = verify_oct_certificate(g, cert)
        assert any(f.startswith("lp:") or f.startswith("lp_lb:") for f in failures)

    def test_wrong_node_count_rejected(self):
        g = triangle()
        cert = oct_certificate(g)
        cert["n"] += 1
        assert any(
            f.startswith("n:") for f in verify_oct_certificate(g, cert)
        )

    def test_planar_identity_enforced(self):
        g = triangle()
        cert = oct_certificate(g)
        cert["s_lb"] = cert["n"] + cert["oct_lb"] + 1
        failures = verify_semiperimeter_certificate(g, cert)
        assert any(f.startswith("s_lb:") for f in failures)


class TestCapacityBound:
    def test_plane_counts(self):
        assert plane_counts(1) == (1, 1)
        assert plane_counts(2) == (2, 1)
        assert plane_counts(3) == (2, 2)
        assert plane_counts(4) == (3, 2)

    def test_plane_counts_rejects_zero(self):
        with pytest.raises(ValueError):
            plane_counts(0)

    @pytest.mark.parametrize(
        "n,oct_lb,ports", [(10, 2, 3), (50, 7, 4), (7, 0, 2), (1, 0, 1)]
    )
    def test_k1_degenerates_to_planar_identity(self, n, oct_lb, ports):
        # The L003 bound at one layer is exactly the L001 bound: both
        # plane counts collapse to 1 and the split minimum is n+oct_lb.
        assert layered_capacity_bound(n, oct_lb, ports, 1)["s_lb"] == n + oct_lb

    def test_more_layers_never_raise_the_bound(self):
        previous = None
        for layers in (1, 2, 3, 4, 5):
            s_lb = layered_capacity_bound(40, 6, 5, layers)["s_lb"]
            if previous is not None:
                assert s_lb <= previous
            previous = s_lb

    def test_port_floor_binds(self):
        # With huge plane capacity the wordline count is still >= ports:
        # the bound bottoms out at the port floor, never below it.
        out = layered_capacity_bound(4, 0, 4, 9)
        assert out["s_lb"] == 4

    def test_fixed_split_bound(self):
        # 6 even wires over 2 planes, 4 odd wires over 1, 2 ports.
        assert fixed_split_capacity_bound(6, 4, 2, 2) == (7, 4)
        # Port floor dominates the even side.
        assert fixed_split_capacity_bound(2, 4, 5, 2) == (9, 5)


class TestLayeredVerifier:
    def layered_cert(self, g, ports, layers):
        cert = oct_certificate(g)
        cert.update(
            layered_capacity_bound(len(g), cert["oct_lb"], ports, layers)
        )
        return cert

    def test_honest_certificate_verifies(self):
        g = two_triangles()
        cert = self.layered_cert(g, 2, 3)
        assert verify_layered_certificate(g, cert, 2, 3) == []

    def test_wrong_layer_count_rejected(self):
        g = triangle()
        cert = self.layered_cert(g, 1, 2)
        failures = verify_layered_certificate(g, cert, 1, 3)
        assert any(f.startswith("plane capacity:") for f in failures)

    def test_wrong_plane_counts_rejected(self):
        g = triangle()
        cert = self.layered_cert(g, 1, 2)
        cert["even_planes"] += 1
        failures = verify_layered_certificate(g, cert, 1, 2)
        assert any("planes" in f for f in failures)

    def test_foreign_port_count_rejected(self):
        g = triangle()
        cert = self.layered_cert(g, 1, 2)
        failures = verify_layered_certificate(g, cert, 3, 2)
        assert any("port" in f for f in failures)

    def test_unsupported_bound_rejected(self):
        g = triangle()
        cert = self.layered_cert(g, 1, 2)
        cert["s_lb"] += 2
        failures = verify_layered_certificate(g, cert, 1, 2)
        assert any("recomputed capacity bound" in f for f in failures)
