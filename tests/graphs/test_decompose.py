"""Tests for the biconnected/cyclic-core decomposition layer in front of
the exact OCT solves (with networkx cross-checks), plus the property
that decomposed solves match monolithic ones."""

import random

import networkx as nx
import pytest

from repro.graphs import (
    UGraph,
    aligned_odd_cycle_transversal,
    biconnected_components,
    cyclic_cores,
    is_bipartite,
    odd_cycle_transversal,
    verify_oct,
)


def random_graph(n, p, seed):
    rng = random.Random(seed)
    g = UGraph()
    for i in range(n):
        g.add_node(i)
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < p:
                g.add_edge(i, j)
    return g


def to_nx(g):
    out = nx.Graph()
    out.add_nodes_from(g.nodes())
    out.add_edges_from(g.edges())
    return out


def edge_keys(edges):
    return frozenset(frozenset(e) for e in edges)


def table1_graphs():
    from repro.bdd import build_sbdd
    from repro.bench.suites import circuit
    from repro.core import preprocess

    for name in ("c17", "rca8", "dec6"):
        yield name, preprocess(build_sbdd(circuit(name)))


class TestBiconnectedComponents:
    def test_empty_graph(self):
        assert biconnected_components(UGraph()) == []

    def test_single_edge_is_one_block(self):
        g = UGraph()
        g.add_edge("a", "b")
        (block,) = biconnected_components(g)
        assert edge_keys(block.edges()) == edge_keys([("a", "b")])

    def test_triangle_with_pendant(self):
        g = UGraph()
        for u, v in ((0, 1), (1, 2), (2, 0), (2, 3)):
            g.add_edge(u, v)
        blocks = [edge_keys(b.edges()) for b in biconnected_components(g)]
        assert edge_keys([(0, 1), (1, 2), (2, 0)]) in blocks
        assert edge_keys([(2, 3)]) in blocks
        assert len(blocks) == 2

    @pytest.mark.parametrize("seed", range(12))
    def test_matches_networkx(self, seed):
        g = random_graph(14, 0.18, seed)
        ours = {edge_keys(b.edges()) for b in biconnected_components(g)}
        theirs = {
            edge_keys(comp)
            for comp in nx.biconnected_component_edges(to_nx(g))
        }
        assert ours == theirs

    def test_blocks_partition_edges(self):
        g = random_graph(20, 0.15, 99)
        blocks = biconnected_components(g)
        total = sum(b.num_edges() for b in blocks)
        assert total == g.num_edges()
        union = set()
        for b in blocks:
            union |= edge_keys(b.edges())
        assert union == edge_keys(g.edges())

    def test_preserves_edge_data(self):
        g = UGraph()
        g.add_edge(0, 1, {"lit": "x"})
        (block,) = biconnected_components(g)
        assert block.edge_data(0, 1) == {"lit": "x"}


class TestCyclicCores:
    def test_bipartite_graph_has_no_cores(self):
        g = UGraph()
        for u, v in ((0, 1), (1, 2), (2, 3), (3, 0)):
            g.add_edge(u, v)
        assert cyclic_cores(g) == []

    def test_tree_has_no_cores(self):
        g = UGraph()
        for u, v in ((0, 1), (1, 2), (1, 3)):
            g.add_edge(u, v)
        assert cyclic_cores(g) == []

    def test_triangle_with_pendant_core_is_triangle(self):
        g = UGraph()
        for u, v in ((0, 1), (1, 2), (2, 0), (2, 3)):
            g.add_edge(u, v)
        (core,) = cyclic_cores(g)
        assert set(core.nodes()) == {0, 1, 2}

    def test_shared_cut_vertex_merges_cores(self):
        # Two triangles sharing node 2: per-block optima sum to 2, but
        # deleting the shared vertex once breaks both — the solver must
        # see them as one core.
        g = UGraph()
        for u, v in ((0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2)):
            g.add_edge(u, v)
        (core,) = cyclic_cores(g)
        assert set(core.nodes()) == {0, 1, 2, 3, 4}
        res = odd_cycle_transversal(g)
        assert len(res.oct_set) == 1 and res.optimal

    def test_disjoint_triangles_stay_separate(self):
        g = UGraph()
        for u, v in ((0, 1), (1, 2), (2, 0), (10, 11), (11, 12), (12, 10)):
            g.add_edge(u, v)
        cores = cyclic_cores(g)
        assert len(cores) == 2
        assert {frozenset(c.nodes()) for c in cores} == {
            frozenset({0, 1, 2}),
            frozenset({10, 11, 12}),
        }

    def test_cores_are_vertex_disjoint_and_non_bipartite(self):
        for seed in range(8):
            g = random_graph(18, 0.16, seed)
            cores = cyclic_cores(g)
            seen = set()
            for core in cores:
                assert not is_bipartite(core)
                assert not (set(core.nodes()) & seen)
                seen |= set(core.nodes())

    def test_removing_core_transversals_leaves_bipartite(self):
        for seed in range(8):
            g = random_graph(16, 0.2, seed + 50)
            union = set()
            for core in cyclic_cores(g):
                union |= odd_cycle_transversal(core).oct_set
            assert verify_oct(g, union)


class TestDecomposedMatchesMonolithic:
    @pytest.mark.parametrize("seed", range(15))
    def test_random_graphs(self, seed):
        g = random_graph(14, 0.18, seed)
        mono = odd_cycle_transversal(g, decompose=False)
        deco = odd_cycle_transversal(g, decompose=True)
        assert verify_oct(g, deco.oct_set)
        assert len(deco.oct_set) == len(mono.oct_set)
        assert deco.optimal and mono.optimal
        assert deco.lower_bound <= len(deco.oct_set) + 1e-9
        # The composed LP bound is exact here (both solves optimal).
        assert deco.lower_bound == pytest.approx(mono.lower_bound)

    def test_table1_graphs(self):
        for name, bg in table1_graphs():
            mono = odd_cycle_transversal(bg.graph, decompose=False)
            deco = odd_cycle_transversal(bg.graph, decompose=True)
            assert verify_oct(bg.graph, deco.oct_set), name
            assert len(deco.oct_set) == len(mono.oct_set), name
            assert deco.optimal and mono.optimal, name

    def test_jobs_do_not_change_the_result(self):
        g = random_graph(20, 0.18, 7)
        seq = odd_cycle_transversal(g, jobs=1)
        par = odd_cycle_transversal(g, jobs=2)
        assert seq.oct_set == par.oct_set
        assert seq.lower_bound == pytest.approx(par.lower_bound)

    def test_coloring_is_proper_across_cut_vertices(self):
        # A bridge between two triangles: per-core colorings must stitch
        # parity-consistently across the bridge.
        g = UGraph()
        for u, v in ((0, 1), (1, 2), (2, 0), (2, 10), (10, 11), (11, 12), (12, 10)):
            g.add_edge(u, v)
        res = odd_cycle_transversal(g)
        surv = set(g.nodes()) - res.oct_set
        for u, v in g.edges():
            if u in surv and v in surv:
                assert res.coloring[u] != res.coloring[v]


class TestAlignedOct:
    def test_adjacent_ports_force_a_deletion(self):
        g = UGraph()
        g.add_edge(0, 1)
        res = aligned_odd_cycle_transversal(g, {0, 1})
        assert len(res.oct_set) == 1 and res.optimal

    def test_no_ports_degrades_to_plain_oct(self):
        g = random_graph(12, 0.2, 3)
        plain = odd_cycle_transversal(g)
        aligned = aligned_odd_cycle_transversal(g, set())
        assert len(aligned.oct_set) == len(plain.oct_set)

    def test_never_smaller_than_unaligned(self):
        for seed in range(8):
            g = random_graph(12, 0.2, seed)
            ports = set(random.Random(seed).sample(range(12), 3))
            plain = odd_cycle_transversal(g)
            aligned = aligned_odd_cycle_transversal(g, ports)
            assert len(aligned.oct_set) >= len(plain.oct_set)

    @pytest.mark.parametrize("seed", range(10))
    def test_surviving_ports_monochromatic_per_component(self, seed):
        g = random_graph(13, 0.2, seed)
        ports = set(random.Random(seed + 1).sample(range(13), 4))
        res = aligned_odd_cycle_transversal(g, ports)
        assert verify_oct(g, res.oct_set)
        remainder = g.subgraph(set(g.nodes()) - res.oct_set)
        for comp in remainder.connected_components():
            colors = {res.coloring[p] for p in ports & comp}
            assert len(colors) <= 1

    @pytest.mark.parametrize("seed", range(10))
    def test_matches_monolithic_hub_solve(self, seed):
        g = random_graph(13, 0.2, seed + 30)
        ports = set(random.Random(seed + 2).sample(range(13), 4))
        mono = aligned_odd_cycle_transversal(g, ports, decompose=False)
        deco = aligned_odd_cycle_transversal(g, ports, decompose=True)
        assert len(deco.oct_set) == len(mono.oct_set)
        assert deco.optimal and mono.optimal
