"""Tests for Dinic max-flow, vertex cuts and iterative-compression OCT."""

import itertools
import random

import networkx as nx
import pytest

from repro.graphs import UGraph, odd_cycle_transversal, two_color, verify_oct
from repro.graphs.flow import Dinic, min_vertex_cut
from repro.graphs.oct_compression import OctBudgetExceeded, oct_iterative_compression


def random_graph(n, p, seed):
    rng = random.Random(seed)
    g = UGraph()
    for i in range(n):
        g.add_node(i)
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < p:
                g.add_edge(i, j)
    return g


class TestDinic:
    def test_simple_path(self):
        d = Dinic()
        d.add_edge("s", "a", 3)
        d.add_edge("a", "t", 2)
        assert d.max_flow("s", "t") == 2

    def test_parallel_paths(self):
        d = Dinic()
        d.add_edge("s", "a", 1)
        d.add_edge("s", "b", 1)
        d.add_edge("a", "t", 1)
        d.add_edge("b", "t", 1)
        assert d.max_flow("s", "t") == 2

    def test_bottleneck(self):
        d = Dinic()
        d.add_edge("s", "a", 10)
        d.add_edge("a", "b", 1)
        d.add_edge("b", "t", 10)
        assert d.max_flow("s", "t") == 1

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            Dinic().add_edge("a", "b", -1)

    def test_long_path_no_recursion_limit(self):
        # The augmenting DFS is iterative: a path far deeper than
        # Python's recursion limit must still route flow.
        import sys

        n = 3 * sys.getrecursionlimit()
        d = Dinic()
        for i in range(n):
            d.add_edge(i, i + 1, 2)
        d.add_edge(0, n + 1, 1)
        d.add_edge(n + 1, n, 1)
        assert d.max_flow(0, n) == 3

    @pytest.mark.parametrize("seed", range(6))
    def test_matches_networkx(self, seed):
        rng = random.Random(seed)
        n = 8
        ref = nx.DiGraph()
        d = Dinic()
        for _ in range(20):
            u, v = rng.sample(range(n), 2)
            cap = rng.randint(1, 9)
            if ref.has_edge(u, v):
                ref[u][v]["capacity"] += cap
            else:
                ref.add_edge(u, v, capacity=cap)
            d.add_edge(u, v, cap)
        ref.add_node(0)
        ref.add_node(n - 1)
        d.node(0), d.node(n - 1)
        expected = nx.maximum_flow_value(ref, 0, n - 1) if ref.has_node(0) else 0
        assert d.max_flow(0, n - 1) == expected


class TestMinVertexCut:
    def test_single_articulation(self):
        g = UGraph()
        g.add_edge("s", "m")
        g.add_edge("m", "t")
        cut = min_vertex_cut(g, ["s"], ["t"], removable=["m"])
        assert cut == {"m"}

    def test_disconnected_needs_nothing(self):
        g = UGraph()
        g.add_node("s")
        g.add_node("t")
        cut = min_vertex_cut(g, ["s"], ["t"], removable=[])
        assert cut == set()

    def test_adjacent_unremovable_terminals_impossible(self):
        g = UGraph()
        g.add_edge("s", "t")
        assert min_vertex_cut(g, ["s"], ["t"], removable=[]) is None

    def test_removable_terminal_can_cut_itself(self):
        g = UGraph()
        g.add_edge("s", "t")
        cut = min_vertex_cut(g, ["s"], ["t"], removable=["s"])
        assert cut == {"s"}

    def test_source_equals_sink_must_be_cut(self):
        g = UGraph()
        g.add_node("x")
        cut = min_vertex_cut(g, ["x"], ["x"], removable=["x"])
        assert cut == {"x"}

    def test_limit_respected(self):
        # Two disjoint s-t paths: min cut 2 > limit 1.
        g = UGraph()
        g.add_edge("s", "a")
        g.add_edge("a", "t")
        g.add_edge("s", "b")
        g.add_edge("b", "t")
        assert min_vertex_cut(g, ["s"], ["t"], removable=["a", "b"], limit=1) is None
        cut = min_vertex_cut(g, ["s"], ["t"], removable=["a", "b"], limit=2)
        assert cut == {"a", "b"}

    @pytest.mark.parametrize("seed", range(5))
    def test_cut_separates(self, seed):
        g = random_graph(9, 0.3, seed)
        nodes = sorted(g.nodes())
        s, t = nodes[0], nodes[-1]
        removable = set(nodes) - {s, t}
        cut = min_vertex_cut(g, [s], [t], removable=removable)
        if cut is None:
            assert g.has_edge(s, t)
            return
        remaining = g.subgraph(set(nodes) - cut)
        comp = None
        for component in remaining.connected_components():
            if s in component:
                comp = component
        assert comp is None or t not in comp


class TestIterativeCompressionOct:
    def test_even_cycle_zero(self):
        g = UGraph()
        for i in range(6):
            g.add_edge(i, (i + 1) % 6)
        result = oct_iterative_compression(g)
        assert result.size == 0

    def test_odd_cycle_one(self):
        g = UGraph()
        for i in range(5):
            g.add_edge(i, (i + 1) % 5)
        result = oct_iterative_compression(g)
        assert result.size == 1
        assert verify_oct(g, result.oct_set)

    def test_k5_needs_three(self):
        g = UGraph()
        for i in range(5):
            for j in range(i + 1, 5):
                g.add_edge(i, j)
        assert oct_iterative_compression(g).size == 3

    @pytest.mark.parametrize("seed", range(8))
    def test_agrees_with_lemma1_pipeline(self, seed):
        """Two entirely independent exact algorithms must agree."""
        g = random_graph(11, 0.25, seed)
        via_vc = odd_cycle_transversal(g)
        via_ic = oct_iterative_compression(g, max_k=11)
        assert via_ic.size == via_vc.size, seed
        assert verify_oct(g, via_ic.oct_set)
        for u, v in g.edges():
            if u not in via_ic.oct_set and v not in via_ic.oct_set:
                assert via_ic.coloring[u] != via_ic.coloring[v]

    def test_budget_exceeded_raises(self):
        g = random_graph(12, 0.8, 3)  # dense: large OCT
        with pytest.raises(OctBudgetExceeded):
            oct_iterative_compression(g, max_k=1)

    def test_bdd_graph_use(self, c17_netlist):
        """The FPT solver works on real BDD graphs too."""
        from repro.bdd import build_sbdd
        from repro.core import preprocess

        bg = preprocess(build_sbdd(c17_netlist))
        exact = odd_cycle_transversal(bg.graph)
        ic = oct_iterative_compression(bg.graph, max_k=8)
        assert ic.size == exact.size
