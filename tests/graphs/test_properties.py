"""Property-based tests for graph algorithms (hypothesis)."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.graphs import (
    UGraph,
    cartesian_product_k2,
    greedy_oct,
    greedy_vertex_cover,
    is_bipartite,
    minimum_vertex_cover,
    odd_cycle_transversal,
    two_color,
    verify_oct,
)


@st.composite
def graphs(draw, max_nodes=9):
    n = draw(st.integers(2, max_nodes))
    edges = draw(
        st.sets(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)).filter(
                lambda e: e[0] < e[1]
            ),
            max_size=n * 2,
        )
    )
    g = UGraph()
    for i in range(n):
        g.add_node(i)
    for u, v in edges:
        g.add_edge(u, v)
    return g


@settings(max_examples=60, deadline=None)
@given(graphs())
def test_two_color_is_proper_when_it_exists(g):
    coloring = two_color(g)
    if coloring is None:
        assert not is_bipartite(g)
    else:
        for u, v in g.edges():
            assert coloring[u] != coloring[v]


@settings(max_examples=60, deadline=None)
@given(graphs())
def test_product_always_contains_twin_matching(g):
    p = cartesian_product_k2(g)
    for v in g.nodes():
        assert p.has_edge((v, 0), (v, 1))
    assert len(p) == 2 * len(g)
    assert p.num_edges() == 2 * g.num_edges() + len(g)


@settings(max_examples=40, deadline=None)
@given(graphs())
def test_minimum_vertex_cover_covers_and_is_minimal(g):
    result = minimum_vertex_cover(g)
    assert all(u in result.cover or v in result.cover for u, v in g.edges())
    greedy = greedy_vertex_cover(g)
    assert len(result.cover) <= len(greedy)
    assert result.lower_bound <= len(result.cover) + 1e-9


@settings(max_examples=30, deadline=None)
@given(graphs())
def test_oct_leaves_bipartite_remainder(g):
    r = odd_cycle_transversal(g)
    assert verify_oct(g, r.oct_set)
    # Lemma 1 consistency: VC(G x K2) = |V| + |OCT|.
    p = cartesian_product_k2(g)
    vc = minimum_vertex_cover(p)
    assert len(vc.cover) == len(g) + r.size


@settings(max_examples=30, deadline=None)
@given(graphs())
def test_greedy_oct_always_valid(g):
    r = greedy_oct(g)
    assert verify_oct(g, r.oct_set)
    exact = odd_cycle_transversal(g)
    assert r.size >= exact.size
