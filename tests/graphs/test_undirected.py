"""Unit tests for the UGraph container."""

import pytest

from repro.graphs import UGraph


@pytest.fixture
def triangle():
    g = UGraph()
    g.add_edge(0, 1, "x")
    g.add_edge(1, 2, "y")
    g.add_edge(2, 0, "z")
    return g


class TestBasics:
    def test_nodes_and_edges(self, triangle):
        assert len(triangle) == 3
        assert triangle.num_edges() == 3
        assert set(triangle.nodes()) == {0, 1, 2}

    def test_contains(self, triangle):
        assert 1 in triangle
        assert 99 not in triangle

    def test_edge_data_orientation_independent(self, triangle):
        assert triangle.edge_data(0, 1) == "x"
        assert triangle.edge_data(1, 0) == "x"

    def test_self_loop_rejected(self):
        g = UGraph()
        with pytest.raises(ValueError):
            g.add_edge(1, 1)

    def test_re_add_edge_replaces_data(self):
        g = UGraph()
        g.add_edge(0, 1, "old")
        g.add_edge(1, 0, "new")
        assert g.num_edges() == 1
        assert g.edge_data(0, 1) == "new"

    def test_neighbors_and_degree(self, triangle):
        assert triangle.neighbors(0) == {1, 2}
        assert triangle.degree(1) == 2

    def test_isolated_node(self):
        g = UGraph()
        g.add_node("lonely")
        assert g.degree("lonely") == 0
        assert len(g) == 1

    def test_mixed_node_types(self):
        g = UGraph()
        g.add_edge(1, ("a", 2))
        assert g.has_edge(("a", 2), 1)
        assert g.edge_data(1, ("a", 2)) is None


class TestMutation:
    def test_remove_edge(self, triangle):
        triangle.remove_edge(0, 1)
        assert not triangle.has_edge(0, 1)
        assert triangle.num_edges() == 2

    def test_remove_node_drops_incident_edges(self, triangle):
        triangle.remove_node(1)
        assert 1 not in triangle
        assert triangle.num_edges() == 1
        assert triangle.has_edge(0, 2)

    def test_remove_missing_node_is_noop(self):
        g = UGraph()
        g.remove_node("ghost")
        assert len(g) == 0


class TestDerived:
    def test_subgraph(self, triangle):
        sub = triangle.subgraph([0, 1])
        assert len(sub) == 2
        assert sub.num_edges() == 1
        assert sub.edge_data(0, 1) == "x"

    def test_copy_is_independent(self, triangle):
        dup = triangle.copy()
        dup.remove_node(0)
        assert 0 in triangle and triangle.num_edges() == 3

    def test_connected_components(self):
        g = UGraph()
        g.add_edge(0, 1)
        g.add_edge(2, 3)
        g.add_node(4)
        comps = sorted(g.connected_components(), key=lambda c: min(c))
        assert comps == [{0, 1}, {2, 3}, {4}]
