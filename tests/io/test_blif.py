"""Unit tests for the BLIF reader/writer."""

import pytest

from repro.circuits import alu_slice, c17, decoder, mux_tree, random_netlist
from repro.io import BlifError, read_blif, write_blif
from tests.conftest import all_envs


EXAMPLE = """\
.model toy
.inputs a b c
.outputs f g
.names a b t1
11 1
.names t1 c f
1- 1
-1 1
.names a g
0 1
.end
"""


class TestReadBlif:
    def test_example(self):
        nl = read_blif(EXAMPLE)
        assert nl.name == "toy"
        out = nl.evaluate({"a": True, "b": True, "c": False})
        assert out == {"f": True, "g": False}
        out = nl.evaluate({"a": False, "b": False, "c": False})
        assert out == {"f": False, "g": True}

    def test_complemented_cover(self):
        nl = read_blif(".model t\n.inputs a b\n.outputs z\n.names a b z\n11 0\n.end\n")
        # ON-set given as the complement: z = ~(a & b).
        assert nl.evaluate({"a": True, "b": True})["z"] is False
        assert nl.evaluate({"a": False, "b": True})["z"] is True

    def test_constant_one(self):
        nl = read_blif(".model t\n.inputs a\n.outputs z\n.names z\n1\n.end\n")
        assert nl.evaluate({"a": False})["z"] is True

    def test_constant_zero_empty_cover(self):
        nl = read_blif(".model t\n.inputs a\n.outputs z\n.names z\n.end\n")
        assert nl.evaluate({"a": True})["z"] is False

    def test_continuation_lines(self):
        text = ".model t\n.inputs a \\\nb\n.outputs z\n.names a b z\n11 1\n.end\n"
        nl = read_blif(text)
        assert nl.inputs == ["a", "b"]

    def test_comments_stripped(self):
        nl = read_blif("# top\n.model t # name\n.inputs a\n.outputs z\n.names a z\n1 1\n.end\n")
        assert nl.evaluate({"a": True})["z"]

    def test_latch_rejected(self):
        with pytest.raises(BlifError, match="unsupported"):
            read_blif(".model t\n.inputs a\n.outputs z\n.latch a z re clk 0\n.end\n")

    def test_mixed_polarity_rejected(self):
        with pytest.raises(BlifError, match="mixed"):
            read_blif(".model t\n.inputs a b\n.outputs z\n.names a b z\n11 1\n00 0\n.end\n")

    def test_cover_outside_names_rejected(self):
        with pytest.raises(BlifError):
            read_blif(".model t\n.inputs a\n.outputs z\n11 1\n.end\n")

    def test_bad_cube_character(self):
        with pytest.raises(BlifError):
            read_blif(".model t\n.inputs a\n.outputs z\n.names a z\nx 1\n.end\n")


class TestWriteBlif:
    @pytest.mark.parametrize(
        "factory",
        [c17, lambda: decoder(3), lambda: mux_tree(2), lambda: alu_slice(2),
         lambda: random_netlist(5, 20, 3, seed=11)],
    )
    def test_round_trip(self, factory):
        nl = factory()
        back = read_blif(write_blif(nl))
        for env in all_envs(nl.inputs):
            assert back.evaluate(env) == nl.evaluate(env)

    def test_model_line(self):
        text = write_blif(c17())
        assert text.startswith(".model c17")
        assert text.strip().endswith(".end")


class TestErrorContext:
    def test_error_carries_source_and_line(self):
        text = ".model m\n.inputs a\n.outputs z\n.latch a z\n.end\n"
        with pytest.raises(BlifError, match=r"f\.blif:4: ") as exc_info:
            read_blif(text, source="f.blif")
        assert exc_info.value.source == "f.blif"
        assert exc_info.value.line == 4

    def test_continuation_lines_report_first_physical_line(self):
        text = ".model m\n.inputs a b\n.outputs z\n.names a \\\nb z\n11 1\n1 1\n"
        # The arity-mismatched cube "1 1" is physical line 7... but the
        # block starts at line 4; the cube's own line must be reported.
        with pytest.raises(BlifError, match="line 7"):
            read_blif(text)

    def test_cover_line_outside_block(self):
        with pytest.raises(BlifError, match="line 2"):
            read_blif(".model m\n11 1\n")
