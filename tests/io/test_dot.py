"""Tests for the Graphviz exporters."""

from repro import Compact
from repro.circuits import c17
from repro.io import design_to_dot, netlist_to_dot


class TestNetlistDot:
    def test_structure(self, c17_netlist):
        dot = netlist_to_dot(c17_netlist)
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")
        for name in c17_netlist.inputs:
            assert f'"{name}"' in dot
        for gate in c17_netlist.gates:
            assert gate.gate_type in dot
        # Output sinks present.
        for out in c17_netlist.outputs:
            assert f"__out_{out}" in dot

    def test_edge_count(self, c17_netlist):
        dot = netlist_to_dot(c17_netlist)
        fan_ins = sum(len(g.inputs) for g in c17_netlist.gates)
        arrow_lines = [l for l in dot.splitlines() if "->" in l]
        assert len(arrow_lines) == fan_ins + len(c17_netlist.outputs)


class TestDesignDot:
    def test_structure(self):
        design = Compact(gamma=0.5).synthesize_netlist(c17()).design
        dot = design_to_dot(design)
        assert dot.count("shape=box") == design.num_rows
        assert dot.count("shape=circle") == design.num_cols
        assert dot.count("dir=none") == design.memristor_count
        assert "Vin" in dot
        for out in design.output_rows:
            assert out in dot
