"""Unit tests for the PLA reader/writer."""

import pytest

from repro.circuits import decoder, priority_encoder
from repro.io import PlaError, read_pla, write_pla
from tests.conftest import all_envs


SIMPLE = """\
.i 3
.o 2
.ilb a b c
.ob f g
.p 3
11- 10
--1 10
0-0 01
.e
"""


class TestReadPla:
    def test_simple_cubes(self):
        nl = read_pla(SIMPLE)
        assert nl.inputs == ["a", "b", "c"]
        assert nl.outputs == ["f", "g"]
        assert nl.evaluate({"a": 1, "b": 1, "c": 0}) == {"f": True, "g": False}
        assert nl.evaluate({"a": 0, "b": 1, "c": 0}) == {"f": False, "g": True}
        assert nl.evaluate({"a": 0, "b": 0, "c": 1}) == {"f": True, "g": False}

    def test_default_names(self):
        nl = read_pla(".i 2\n.o 1\n11 1\n.e\n")
        assert nl.inputs == ["x0", "x1"]
        assert nl.outputs == ["f0"]
        assert nl.evaluate({"x0": 1, "x1": 1})["f0"]

    def test_comments_and_blank_lines(self):
        nl = read_pla("# header\n.i 1\n.o 1\n\n1 1  # cube\n.e\n")
        assert nl.evaluate({"x0": True})["f0"]

    def test_all_dash_cube_is_tautology(self):
        nl = read_pla(".i 2\n.o 1\n-- 1\n.e\n")
        for env in all_envs(nl.inputs):
            assert nl.evaluate(env)["f0"]

    def test_output_never_set_is_constant_false(self):
        nl = read_pla(".i 2\n.o 2\n11 10\n.e\n")
        for env in all_envs(nl.inputs):
            assert not nl.evaluate(env)["f1"]

    def test_missing_header_raises(self):
        with pytest.raises(PlaError, match="missing"):
            read_pla("11 1\n")

    def test_bad_cube_arity(self):
        with pytest.raises(PlaError):
            read_pla(".i 3\n.o 1\n11 1\n.e\n")

    def test_bad_character(self):
        with pytest.raises(PlaError):
            read_pla(".i 2\n.o 1\n1x 1\n.e\n")

    def test_unsupported_directive(self):
        with pytest.raises(PlaError, match="unsupported"):
            read_pla(".i 1\n.o 1\n.mv 4\n1 1\n.e\n")

    def test_ilb_arity_mismatch(self):
        with pytest.raises(PlaError, match="arity"):
            read_pla(".i 2\n.o 1\n.ilb a\n11 1\n.e\n")


class TestWritePla:
    @pytest.mark.parametrize("factory", [lambda: decoder(3), lambda: priority_encoder(4)])
    def test_round_trip(self, factory):
        nl = factory()
        back = read_pla(write_pla(nl))
        for env in all_envs(nl.inputs):
            assert back.evaluate(env) == nl.evaluate(env)

    def test_refuses_wide_inputs(self):
        nl = priority_encoder(20)
        with pytest.raises(PlaError, match="2\\^20"):
            write_pla(nl)

    def test_header_fields(self):
        text = write_pla(decoder(2))
        assert ".i 2" in text and ".o 4" in text and text.strip().endswith(".e")


class TestErrorContext:
    def test_error_carries_source_and_line(self):
        with pytest.raises(PlaError, match=r"f\.pla:4: ") as exc_info:
            read_pla(".i 2\n.o 1\n11 1\n1- x 1\n.e\n", source="f.pla")
        assert exc_info.value.source == "f.pla"
        assert exc_info.value.line == 4

    def test_line_numbers_skip_comments_and_blanks(self):
        text = "# header\n\n.i 1\n.o 1\n\n.bogus\n"
        with pytest.raises(PlaError, match="line 6"):
            read_pla(text)

    def test_source_only_prefix_without_line(self):
        with pytest.raises(PlaError, match=r"^g\.pla: PLA file missing"):
            read_pla("", source="g.pla")
