"""Property-based round-trip tests across all three formats."""

import itertools

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.circuits import random_netlist
from repro.io import read_blif, read_pla, read_verilog, write_blif, write_pla, write_verilog


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10_000), st.integers(3, 6), st.integers(5, 20))
def test_blif_round_trip_random_netlists(seed, n_inputs, n_gates):
    nl = random_netlist(n_inputs, n_gates, 3, seed=seed)
    back = read_blif(write_blif(nl))
    for bits in itertools.product([False, True], repeat=n_inputs):
        env = dict(zip(nl.inputs, bits))
        assert back.evaluate(env) == nl.evaluate(env)


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 10_000), st.integers(3, 5))
def test_pla_round_trip_random_netlists(seed, n_inputs):
    nl = random_netlist(n_inputs, 12, 2, seed=seed)
    back = read_pla(write_pla(nl))
    for bits in itertools.product([False, True], repeat=n_inputs):
        env = dict(zip(nl.inputs, bits))
        assert back.evaluate(env) == nl.evaluate(env)


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 10_000), st.integers(3, 6))
def test_verilog_round_trip_random_netlists(seed, n_inputs):
    nl = random_netlist(n_inputs, 15, 3, seed=seed)
    back = read_verilog(write_verilog(nl))
    for bits in itertools.product([False, True], repeat=n_inputs):
        env = dict(zip(nl.inputs, bits))
        assert back.evaluate(env) == nl.evaluate(env)


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 10_000))
def test_cross_format_chain(seed):
    """netlist -> BLIF -> netlist -> Verilog -> netlist stays equivalent."""
    nl = random_netlist(4, 12, 2, seed=seed)
    via_blif = read_blif(write_blif(nl))
    via_both = read_verilog(write_verilog(via_blif))
    for bits in itertools.product([False, True], repeat=4):
        env = dict(zip(nl.inputs, bits))
        assert via_both.evaluate(env) == nl.evaluate(env)
