"""Unit tests for the structural Verilog reader/writer."""

import pytest

from repro.circuits import c17, comparator, mux_tree, majority_voter, random_netlist
from repro.io import VerilogError, read_verilog, write_verilog
from tests.conftest import all_envs


C17_TEXT = """
// ISCAS85 c17 netlist
module c17 (N1, N2, N3, N6, N7, N22, N23);
  input N1, N2, N3, N6, N7;
  output N22, N23;
  wire N10, N11, N16, N19;
  nand NAND2_1 (N10, N1, N3);
  nand NAND2_2 (N11, N3, N6);
  nand NAND2_3 (N16, N2, N11);
  nand NAND2_4 (N19, N11, N7);
  nand NAND2_5 (N22, N10, N16);
  nand NAND2_6 (N23, N16, N19);
endmodule
"""


class TestReadVerilog:
    def test_c17_matches_builtin(self):
        nl = read_verilog(C17_TEXT)
        ref = c17()
        for env in all_envs(nl.inputs):
            ref_env = dict(zip(ref.inputs, [env[n] for n in nl.inputs]))
            assert list(nl.evaluate(env).values()) == list(ref.evaluate(ref_env).values())

    def test_block_comments_ignored(self):
        text = "/* hdr */ module t (a, z); input a; output z; not g (z, a); endmodule"
        nl = read_verilog(text)
        assert nl.evaluate({"a": False})["z"]

    def test_anonymous_instances(self):
        text = "module t (a, b, z); input a, b; output z; and (z, a, b); endmodule"
        nl = read_verilog(text)
        assert nl.evaluate({"a": True, "b": True})["z"]

    def test_multiline_declarations(self):
        text = "module t (a,\n b, z); input a,\n b; output z; or g (z, a, b); endmodule"
        nl = read_verilog(text)
        assert set(nl.inputs) == {"a", "b"}

    def test_missing_module_raises(self):
        with pytest.raises(VerilogError, match="module"):
            read_verilog("wire x;")

    def test_missing_endmodule_raises(self):
        with pytest.raises(VerilogError, match="endmodule"):
            read_verilog("module t (a); input a;")


class TestWriteVerilog:
    @pytest.mark.parametrize(
        "factory",
        [c17, lambda: comparator(3), lambda: mux_tree(2),
         lambda: majority_voter(3), lambda: random_netlist(5, 15, 3, seed=3)],
    )
    def test_round_trip(self, factory):
        nl = factory()
        back = read_verilog(write_verilog(nl))
        for env in all_envs(nl.inputs):
            assert back.evaluate(env) == nl.evaluate(env)

    def test_output_is_parseable_module(self):
        text = write_verilog(c17())
        assert text.startswith("module c17")
        assert text.rstrip().endswith("endmodule")


class TestErrorContext:
    def test_error_carries_source_and_line(self):
        text = "module m (a, b);\n  input a;\n  output b;\n  nand g0 ();\nendmodule\n"
        with pytest.raises(VerilogError, match=r"f\.v:4: ") as exc_info:
            read_verilog(text, source="f.v")
        assert exc_info.value.source == "f.v"
        assert exc_info.value.line == 4

    def test_block_comments_preserve_line_numbers(self):
        text = (
            "module m (a, b);\n"
            "/* a\n   multi-line\n   comment */\n"
            "  input a;\n  output b;\n  nand g0 ();\nendmodule\n"
        )
        with pytest.raises(VerilogError, match="line 7"):
            read_verilog(text)

    def test_missing_module_names_source(self):
        with pytest.raises(VerilogError, match=r"^h\.v: no module"):
            read_verilog("wire x;\n", source="h.v")
