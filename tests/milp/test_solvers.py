"""Tests for both MILP backends against brute force and each other."""

import itertools
import random

import pytest

from repro.milp import Model, SolveStatus, sum_expr

BACKENDS = ["bnb", "highs"]


def brute_force_knapsack(values, weights, cap):
    n = len(values)
    best = 0
    for mask in range(1 << n):
        w = sum(weights[i] for i in range(n) if (mask >> i) & 1)
        if w <= cap:
            best = max(best, sum(values[i] for i in range(n) if (mask >> i) & 1))
    return best


def knapsack_model(values, weights, cap):
    m = Model("knapsack")
    xs = [m.add_binary(f"x{i}") for i in range(len(values))]
    m.add_constraint(sum_expr(w * x for w, x in zip(weights, xs)) <= cap)
    m.maximize(sum_expr(v * x for v, x in zip(values, xs)))
    return m


class TestKnapsack:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("seed", range(6))
    def test_optimal(self, backend, seed):
        rng = random.Random(seed)
        n = rng.randint(4, 11)
        values = [rng.randint(1, 30) for _ in range(n)]
        weights = [rng.randint(1, 20) for _ in range(n)]
        cap = sum(weights) // 2
        expected = brute_force_knapsack(values, weights, cap)
        sol = knapsack_model(values, weights, cap).solve(backend=backend)
        assert sol.is_optimal
        assert abs(sol.objective - expected) < 1e-6


class TestStatuses:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_infeasible(self, backend):
        m = Model()
        x = m.add_binary("x")
        m.add_constraint(x >= 1)
        m.add_constraint(x <= 0)
        assert m.solve(backend=backend).status == SolveStatus.INFEASIBLE

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_empty_model(self, backend):
        sol = Model().solve(backend=backend)
        assert sol.is_optimal

    def test_unbounded_bnb(self):
        m = Model()
        x = m.add_continuous("x", 0)
        m.maximize(x)
        sol = m.solve(backend="bnb")
        assert sol.status == SolveStatus.UNBOUNDED

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_integer_infeasible_continuous_feasible(self, backend):
        # 2x == 1 has an LP solution but no integer solution.
        m = Model()
        x = m.add_integer("x", 0, 10)
        m.add_constraint(2 * x == 1)
        m.minimize(x)
        assert m.solve(backend=backend).status == SolveStatus.INFEASIBLE


class TestMixedInteger:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_continuous_part_exact(self, backend):
        m = Model()
        xi = m.add_integer("xi", 0, 10)
        y = m.add_continuous("y", 0, 10)
        m.add_constraint(2 * xi + y <= 7.5)
        m.maximize(3 * xi + 2 * y)
        sol = m.solve(backend=backend)
        assert abs(sol.objective - 15.0) < 1e-6
        assert abs(sol["y"] - 7.5) < 1e-6

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_equality_constraints(self, backend):
        m = Model()
        a, b = m.add_binary("a"), m.add_binary("b")
        m.add_constraint(a + b == 1)
        m.minimize(2 * a + b)
        sol = m.solve(backend=backend)
        assert sol.int_value("b") == 1 and sol.int_value("a") == 0

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_objective_constant_carried(self, backend):
        m = Model()
        x = m.add_binary("x")
        m.add_constraint(x >= 1)
        m.minimize(x + 10)
        assert abs(m.solve(backend=backend).objective - 11.0) < 1e-6


class TestWarmStartAndTrace:
    def test_warm_start_accepted(self):
        m = Model()
        xs = [m.add_binary(f"x{i}") for i in range(6)]
        for i in range(5):
            m.add_constraint(xs[i] + xs[i + 1] >= 1)
        m.minimize(sum_expr(xs))
        warm = {f"x{i}": float(i % 2 == 1) for i in range(6)}
        warm["x5"] = 1.0
        sol = m.solve(backend="bnb", initial_solution=warm)
        assert sol.is_optimal

    def test_infeasible_warm_start_ignored(self):
        m = Model()
        x, y = m.add_binary("x"), m.add_binary("y")
        m.add_constraint(x + y >= 1)
        m.minimize(x + y)
        sol = m.solve(backend="bnb", initial_solution={"x": 0.0, "y": 0.0})
        assert sol.is_optimal and abs(sol.objective - 1.0) < 1e-9

    def test_trace_monotone(self):
        rng = random.Random(7)
        m = Model()
        xs = [m.add_binary(f"x{i}") for i in range(14)]
        for _ in range(25):
            i, j = rng.sample(range(14), 2)
            m.add_constraint(xs[i] + xs[j] >= 1)
        m.minimize(sum_expr(xs))
        sol = m.solve(backend="bnb")
        assert sol.is_optimal
        bounds = [b for _, _, b, _ in sol.trace]
        assert bounds == sorted(bounds)  # dual bound only improves
        incs = [i for _, i, _, _ in sol.trace if i is not None]
        assert all(x >= y for x, y in zip(incs, incs[1:]))  # incumbents improve

    def test_trace_callback_invoked(self):
        events = []
        m = Model()
        x = m.add_binary("x")
        m.add_constraint(x >= 1)
        m.minimize(x)
        m.solve(backend="bnb", trace_callback=lambda *a: events.append(a))
        assert events

    def test_time_limit_returns_feasible(self):
        rng = random.Random(3)
        m = Model()
        xs = [m.add_binary(f"x{i}") for i in range(40)]
        for _ in range(120):
            i, j, k = rng.sample(range(40), 3)
            m.add_constraint(xs[i] + xs[j] + xs[k] >= 1)
        m.minimize(sum_expr(xs))
        sol = m.solve(backend="bnb", time_limit=0.5)
        assert sol.status in (SolveStatus.OPTIMAL, SolveStatus.FEASIBLE)
        if sol.status == SolveStatus.FEASIBLE:
            assert sol.gap is None or sol.gap >= 0


class TestAgreementProperty:
    @pytest.mark.parametrize("seed", range(8))
    def test_backends_agree_on_random_covering_lps(self, seed):
        rng = random.Random(seed)
        n = rng.randint(5, 12)
        m1, m2 = Model(), Model()
        for m in (m1, m2):
            xs = [m.add_binary(f"x{i}") for i in range(n)]
            rng2 = random.Random(seed + 1000)
            for _ in range(n * 2):
                i, j = rng2.sample(range(n), 2)
                m.add_constraint(xs[i] + xs[j] >= 1)
            weights = [random.Random(seed + i).randint(1, 5) for i in range(n)]
            m.minimize(sum_expr(w * x for w, x in zip(weights, xs)))
        s1 = m1.solve(backend="bnb")
        s2 = m2.solve(backend="highs")
        assert s1.is_optimal and s2.is_optimal
        assert abs(s1.objective - s2.objective) < 1e-6
