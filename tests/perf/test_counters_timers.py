"""Unit tests for the perf counters and stage timers."""

import time

import pytest

from repro.perf import StageTimer, counters


@pytest.fixture(autouse=True)
def _clean_counters():
    counters.reset()
    yield
    counters.reset()


class TestCounters:
    def test_increment_and_get(self):
        assert counters.get("widgets") == 0
        counters.increment("widgets")
        counters.increment("widgets", 4)
        assert counters.get("widgets") == 5

    def test_reset_single(self):
        counters.increment("a")
        counters.increment("b", 2)
        counters.reset("a")
        assert counters.get("a") == 0
        assert counters.get("b") == 2

    def test_reset_all(self):
        counters.increment("a")
        counters.increment("b")
        counters.reset()
        assert counters.snapshot() == {}

    def test_snapshot_is_a_copy(self):
        counters.increment("a")
        snap = counters.snapshot()
        snap["a"] = 999
        assert counters.get("a") == 1


class TestStageTimer:
    def test_stages_accumulate(self):
        timer = StageTimer()
        with timer.stage("work"):
            time.sleep(0.002)
        with timer.stage("work"):
            time.sleep(0.002)
        with timer.stage("other"):
            pass
        assert timer.times["work"] >= 0.004
        assert set(timer.times) == {"work", "other"}
        assert timer.total == pytest.approx(sum(timer.times.values()))

    def test_exception_still_records(self):
        timer = StageTimer()
        with pytest.raises(RuntimeError):
            with timer.stage("boom"):
                raise RuntimeError("x")
        assert "boom" in timer.times
