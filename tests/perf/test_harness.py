"""Perf harness tests: record shape, determinism across --jobs levels."""

import json

import pytest

from repro.perf import validate_bench_payload
from repro.perf.harness import (
    deterministic_view,
    run_perf_circuit,
    run_perf_suite,
    write_bench_json,
)

TINY = ["c17", "parity16"]


@pytest.fixture(scope="module")
def tiny_payload():
    return run_perf_suite(names=TINY, time_limit=10.0)


class TestRunPerfCircuit:
    def test_record_shape(self):
        record = run_perf_circuit("c17", time_limit=10.0)
        assert record["circuit"] == "c17"
        assert record["inputs"] == 5 and record["outputs"] == 2
        assert record["sbdd_nodes_sifted"] <= record["sbdd_nodes_static"]
        # In-place sifting never rebuilds the SBDD during the scan.
        assert record["sift"]["rebuilds"] == 0
        assert record["sift"]["swaps"] > 0
        assert record["cache"]["hits"] >= 0
        assert 0.0 <= record["cache"]["hit_rate"] <= 1.0
        assert record["crossbar"]["semiperimeter"] == (
            record["crossbar"]["rows"] + record["crossbar"]["cols"]
        )

    def test_unknown_circuit_rejected(self):
        with pytest.raises(ValueError, match="unknown suite circuits: nope"):
            run_perf_suite(names=["c17", "nope"])


class TestSuitePayload:
    def test_payload_validates(self, tiny_payload):
        validate_bench_payload(tiny_payload)
        assert tiny_payload["totals"]["circuits"] == len(TINY)
        assert [r["circuit"] for r in tiny_payload["circuits"]] == sorted(TINY)

    def test_write_bench_json_round_trips(self, tiny_payload, tmp_path):
        path = write_bench_json(tmp_path / "bench.json", tiny_payload)
        loaded = json.loads(path.read_text())
        validate_bench_payload(loaded)
        assert deterministic_view(loaded) == deterministic_view(tiny_payload)
        assert path.read_text().endswith("\n")

    def test_deterministic_view_strips_clock_fields(self, tiny_payload):
        view = deterministic_view(tiny_payload)
        assert "jobs" not in view and "python" not in view
        text = json.dumps(view)
        assert "wall_time_s" not in text
        assert "time_s" not in text
        assert "stages" not in text


class TestDeterministicParallelism:
    def test_jobs_1_equals_jobs_4(self, tiny_payload):
        """Workers are pure (fresh manager + counters per process), so
        the deterministic view must not depend on the --jobs level."""
        parallel = run_perf_suite(names=TINY, jobs=4, time_limit=10.0)
        assert deterministic_view(parallel) == deterministic_view(tiny_payload)

    def test_repeat_run_is_deterministic(self, tiny_payload):
        again = run_perf_suite(names=TINY, time_limit=10.0)
        assert deterministic_view(again) == deterministic_view(tiny_payload)


class TestLayerSweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        from repro.perf.harness import run_layer_sweep

        return run_layer_sweep(names=["c17"], layers=(1, 2), time_limit=10.0)

    def test_shape(self, sweep):
        assert sweep["layers"] == [1, 2]
        (entry,) = sweep["circuits"]
        assert entry["circuit"] == "c17"
        assert [r["layers"] for r in entry["results"]] == [1, 2]
        for r in entry["results"]:
            assert r["ok"] is True
            assert r["semiperimeter"] == r["rows"] + r["cols"]

    def test_more_layers_never_wider(self, sweep):
        (entry,) = sweep["circuits"]
        one, two = entry["results"]
        assert two["semiperimeter"] <= one["semiperimeter"]
        assert one["plane_method"] == "2d"
        assert two["plane_method"] != "2d"

    def test_certification_fields(self, sweep):
        # Every row reports whether its plane assignment is certified
        # optimal and the gap to the certified footprint bound.  The
        # planar row is exact by construction (the lift preserves the
        # stage-1 identity), so it must certify with the L001 bound.
        (entry,) = sweep["circuits"]
        one, two = entry["results"]
        assert one["plane_optimal"] is True
        assert isinstance(two["plane_optimal"], bool)
        for r in entry["results"]:
            assert r["certified_gap"] >= 0

    def test_rendered_table(self, sweep):
        from repro.perf.harness import render_layer_sweep_table

        text = str(render_layer_sweep_table(sweep))
        assert "memristor layers" in text
        assert "c17" in text

    def test_embeds_in_valid_payload(self, sweep, tiny_payload):
        payload = dict(tiny_payload)
        payload["layer_sweep"] = sweep
        validate_bench_payload(payload)
        stripped = deterministic_view(payload)
        for entry in stripped["layer_sweep"]["circuits"]:
            assert all("wall_time_s" not in r for r in entry["results"])
