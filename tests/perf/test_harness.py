"""Perf harness tests: record shape, determinism across --jobs levels."""

import json

import pytest

from repro.perf import validate_bench_payload
from repro.perf.harness import (
    deterministic_view,
    run_perf_circuit,
    run_perf_suite,
    write_bench_json,
)

TINY = ["c17", "parity16"]


@pytest.fixture(scope="module")
def tiny_payload():
    return run_perf_suite(names=TINY, time_limit=10.0)


class TestRunPerfCircuit:
    def test_record_shape(self):
        record = run_perf_circuit("c17", time_limit=10.0)
        assert record["circuit"] == "c17"
        assert record["inputs"] == 5 and record["outputs"] == 2
        assert record["sbdd_nodes_sifted"] <= record["sbdd_nodes_static"]
        # In-place sifting never rebuilds the SBDD during the scan.
        assert record["sift"]["rebuilds"] == 0
        assert record["sift"]["swaps"] > 0
        assert record["cache"]["hits"] >= 0
        assert 0.0 <= record["cache"]["hit_rate"] <= 1.0
        assert record["crossbar"]["semiperimeter"] == (
            record["crossbar"]["rows"] + record["crossbar"]["cols"]
        )

    def test_unknown_circuit_rejected(self):
        with pytest.raises(ValueError, match="unknown suite circuits: nope"):
            run_perf_suite(names=["c17", "nope"])


class TestSuitePayload:
    def test_payload_validates(self, tiny_payload):
        validate_bench_payload(tiny_payload)
        assert tiny_payload["totals"]["circuits"] == len(TINY)
        assert [r["circuit"] for r in tiny_payload["circuits"]] == sorted(TINY)

    def test_write_bench_json_round_trips(self, tiny_payload, tmp_path):
        path = write_bench_json(tmp_path / "bench.json", tiny_payload)
        loaded = json.loads(path.read_text())
        validate_bench_payload(loaded)
        assert deterministic_view(loaded) == deterministic_view(tiny_payload)
        assert path.read_text().endswith("\n")

    def test_deterministic_view_strips_clock_fields(self, tiny_payload):
        view = deterministic_view(tiny_payload)
        assert "jobs" not in view and "python" not in view
        text = json.dumps(view)
        assert "wall_time_s" not in text
        assert "time_s" not in text
        assert "stages" not in text


class TestDeterministicParallelism:
    def test_jobs_1_equals_jobs_4(self, tiny_payload):
        """Workers are pure (fresh manager + counters per process), so
        the deterministic view must not depend on the --jobs level."""
        parallel = run_perf_suite(names=TINY, jobs=4, time_limit=10.0)
        assert deterministic_view(parallel) == deterministic_view(tiny_payload)

    def test_repeat_run_is_deterministic(self, tiny_payload):
        again = run_perf_suite(names=TINY, time_limit=10.0)
        assert deterministic_view(again) == deterministic_view(tiny_payload)
