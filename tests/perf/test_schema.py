"""Schema validation tests for BENCH_*.json perf baselines."""

import copy

import pytest

from repro.perf import BENCH_SCHEMA_ID, validate_bench_payload


def _record(name="c17"):
    return {
        "circuit": name,
        "inputs": 5,
        "outputs": 2,
        "sbdd_nodes_static": 14,
        "sbdd_nodes_sifted": 12,
        "bdd_table_size": 30,
        "wall_time_s": 0.1,
        "optimal": True,
        "sift": {"swaps": 20, "rebuilds": 0, "time_s": 0.01},
        "cache": {"hits": 10, "misses": 5, "resets": 0, "hit_rate": 0.666},
        "crossbar": {"rows": 4, "cols": 7, "semiperimeter": 11, "max_dimension": 7},
        "stages": {"bdd": 0.01, "labeling": 0.05},
    }


def _payload():
    return {
        "schema": BENCH_SCHEMA_ID,
        "suite_tier": "fast",
        "gamma": 0.5,
        "method": "auto",
        "backend": "highs",
        "time_limit": 20.0,
        "jobs": 1,
        "python": "3.11.0",
        "circuits": [_record("c17"), _record("parity16")],
        "totals": {
            "circuits": 2,
            "wall_time_s": 0.2,
            "sift_swaps": 40,
            "sbdd_nodes_sifted": 24,
        },
    }


def test_valid_payload_passes_and_chains():
    p = _payload()
    assert validate_bench_payload(p) is p


def test_wrong_schema_id():
    p = _payload()
    p["schema"] = "repro-bench-perf/99"
    with pytest.raises(ValueError, match=r"\$\.schema"):
        validate_bench_payload(p)


def test_missing_top_level_field():
    p = _payload()
    del p["gamma"]
    with pytest.raises(ValueError, match=r"\$\.gamma: missing"):
        validate_bench_payload(p)


def test_missing_circuit_field_names_path():
    p = _payload()
    del p["circuits"][1]["sift"]["rebuilds"]
    with pytest.raises(ValueError, match=r"\$\.circuits\[1\]\.sift\.rebuilds"):
        validate_bench_payload(p)


def test_bool_is_not_int():
    p = _payload()
    p["circuits"][0]["inputs"] = True
    with pytest.raises(ValueError, match="expected int, got bool"):
        validate_bench_payload(p)


def test_totals_count_must_match():
    p = _payload()
    p["totals"]["circuits"] = 3
    with pytest.raises(ValueError, match=r"\$\.totals\.circuits"):
        validate_bench_payload(p)


def test_records_must_be_sorted():
    p = _payload()
    p["circuits"].reverse()
    with pytest.raises(ValueError, match="sorted"):
        validate_bench_payload(p)


def test_duplicate_circuits_rejected():
    p = _payload()
    p["circuits"] = [_record("c17"), _record("c17")]
    with pytest.raises(ValueError, match="duplicate"):
        validate_bench_payload(p)


def test_non_numeric_stage_rejected():
    p = _payload()
    p["circuits"][0]["stages"]["bdd"] = "fast"
    with pytest.raises(ValueError, match=r"stages\.bdd"):
        validate_bench_payload(p)


def test_valid_payload_unchanged_by_validation():
    p = _payload()
    before = copy.deepcopy(p)
    validate_bench_payload(p)
    assert p == before


def _sweep_row(layers):
    return {
        "layers": layers, "rows": 4, "cols": 7, "semiperimeter": 11,
        "max_dimension": 7, "vias": 0 if layers == 1 else 2,
        "plane_method": "2d" if layers == 1 else "fold",
        "plane_optimal": layers == 1, "certified_gap": 0 if layers == 1 else 3,
        "ok": True,
    }


def _sweep_block():
    return {
        "layers": [1, 2],
        "gamma": 0.5,
        "method": "auto",
        "circuits": [
            {"circuit": "c17", "results": [_sweep_row(1), _sweep_row(2)]},
        ],
    }


class TestLayerSweepSchema:
    def test_valid_block_passes(self):
        payload = _payload()
        payload["layer_sweep"] = _sweep_block()
        validate_bench_payload(payload)

    def test_layers_must_be_increasing(self):
        payload = _payload()
        block = _sweep_block()
        block["layers"] = [2, 1]
        payload["layer_sweep"] = block
        with pytest.raises(ValueError):
            validate_bench_payload(payload)

    def test_result_layer_must_be_declared(self):
        payload = _payload()
        block = _sweep_block()
        block["circuits"][0]["results"].append(_sweep_row(5))
        payload["layer_sweep"] = block
        with pytest.raises(ValueError):
            validate_bench_payload(payload)

    def test_missing_result_field_rejected(self):
        payload = _payload()
        block = _sweep_block()
        del block["circuits"][0]["results"][0]["vias"]
        payload["layer_sweep"] = block
        with pytest.raises(ValueError):
            validate_bench_payload(payload)

    def test_circuits_must_be_sorted(self):
        payload = _payload()
        block = _sweep_block()
        block["circuits"] = [
            {"circuit": "parity16", "results": [_sweep_row(1)]},
            {"circuit": "c17", "results": [_sweep_row(1)]},
        ]
        payload["layer_sweep"] = block
        with pytest.raises(ValueError):
            validate_bench_payload(payload)
