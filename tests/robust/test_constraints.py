"""Tests for the placement constraint model."""

import pytest

from repro import Compact
from repro.crossbar import FaultMap
from repro.crossbar.faults import STUCK_OFF, STUCK_ON, Fault
from repro.expr import parse
from repro.robust import (
    ON,
    VAR,
    cell_classes,
    placement_violations,
    sneak_exclusions,
)


@pytest.fixture(scope="module")
def and_design():
    e = parse("a & b")
    return Compact(gamma=0.5).synthesize_expr(e, name="f").design


def identity_maps(design):
    return (
        {r: r for r in range(design.num_rows)},
        {c: c for c in range(design.num_cols)},
    )


class TestCellClasses:
    def test_covers_exactly_the_programmed_cells(self, and_design):
        classes = cell_classes(and_design)
        assert set(classes) == {(r, c) for r, c, _ in and_design.cells()}
        assert set(classes.values()) <= {ON, VAR}


class TestPerCellRules:
    def test_clean_map_has_no_violations(self, and_design):
        rm, cm = identity_maps(and_design)
        fm = FaultMap(and_design.num_rows, and_design.num_cols, ())
        assert placement_violations(and_design, fm, rm, cm) == []

    def test_stuck_off_under_programmed_cell_flagged(self, and_design):
        rm, cm = identity_maps(and_design)
        r, c, _ = next(iter(and_design.cells()))
        fm = FaultMap(
            and_design.num_rows, and_design.num_cols, (Fault(r, c, STUCK_OFF),)
        )
        vs = placement_violations(and_design, fm, rm, cm)
        assert len(vs) == 1 and vs[0].logical == (r, c)
        assert "stuck_off" in vs[0].reason

    def test_stuck_off_under_open_cell_harmless(self):
        # "a & b" is fully programmed; this shape leaves open crosspoints.
        d = Compact(gamma=0.5).synthesize_expr(
            parse("(a | b) & (c | d)"), name="f"
        ).design
        rm, cm = identity_maps(d)
        programmed = {(r, c) for r, c, _ in d.cells()}
        open_site = next(
            (r, c)
            for r in range(d.num_rows)
            for c in range(d.num_cols)
            if (r, c) not in programmed
        )
        fm = FaultMap(d.num_rows, d.num_cols, (Fault(*open_site, STUCK_OFF),))
        assert placement_violations(d, fm, rm, cm) == []

    def test_stuck_on_under_variable_cell_flagged(self, and_design):
        rm, cm = identity_maps(and_design)
        classes = cell_classes(and_design)
        var_site = next(site for site, k in classes.items() if k == VAR)
        fm = FaultMap(
            and_design.num_rows, and_design.num_cols,
            (Fault(*var_site, STUCK_ON),),
        )
        vs = placement_violations(and_design, fm, rm, cm)
        assert len(vs) == 1 and "stuck_on" in vs[0].reason


class TestSneakPaths:
    def test_chain_through_unused_line_flagged(self, and_design):
        """Two shorts on an unused spare column bridge two used rows."""
        rows, cols = and_design.num_rows, and_design.num_cols
        rm, cm = identity_maps(and_design)
        spare_col = cols  # physical col beyond the design: unused
        fm = FaultMap(
            rows, cols + 1,
            (Fault(0, spare_col, STUCK_ON), Fault(1, spare_col, STUCK_ON)),
        )
        vs = placement_violations(and_design, fm, rm, cm)
        assert len(vs) == 2
        assert all(v.logical is None for v in vs)
        assert all("sneak" in v.reason for v in vs)

    def test_single_short_on_unused_line_harmless(self, and_design):
        rows, cols = and_design.num_rows, and_design.num_cols
        rm, cm = identity_maps(and_design)
        fm = FaultMap(rows, cols + 1, (Fault(0, cols, STUCK_ON),))
        assert placement_violations(and_design, fm, rm, cm) == []


class TestSneakExclusions:
    def test_two_edge_component_excluded(self):
        fm = FaultMap(
            10, 10, (Fault(2, 5, STUCK_ON), Fault(7, 5, STUCK_ON))
        )
        er, ec = sneak_exclusions(fm, 2, 2)
        # All component lines but one must go; 3 lines -> 2 exclusions.
        assert len(er) + len(ec) == 2
        assert er <= {2, 7} and ec <= {5}

    def test_single_edges_do_not_burn_slack(self):
        fm = FaultMap(
            10, 10, (Fault(1, 1, STUCK_ON), Fault(8, 8, STUCK_ON))
        )
        assert sneak_exclusions(fm, 2, 2) == (set(), set())

    def test_respects_slack(self):
        faults = tuple(Fault(r, 0, STUCK_ON) for r in range(6))
        fm = FaultMap(10, 10, faults)
        er, ec = sneak_exclusions(fm, 1, 1)  # needs 5 exclusions: skip
        assert er == set() and ec == set()
