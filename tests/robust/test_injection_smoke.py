"""Fault-injection smoke test: 2% faults on three suite circuits.

This is the test ``make verify`` leans on: synthesize, inject a seeded
2% stuck-at map with spares, remap, and validate the result end to end.
Genuinely infeasible draws must surface as RemapFailure diagnoses.
"""

import pytest

from repro import Compact, RemapFailure, remap
from repro.bench.suites import suite
from repro.crossbar import random_fault_map, validate_under_faults

CIRCUITS = ["c17", "mux16", "parity16"]


@pytest.mark.parametrize("name", CIRCUITS)
def test_two_percent_injection_roundtrip(name):
    entry = next(e for e in suite("fast") if e.name == name)
    nl = entry.build()
    design = Compact(gamma=0.5, method="heuristic").synthesize_netlist(nl).design
    recovered = 0
    for trial in range(3):
        fm = random_fault_map(
            design.num_rows + 2, design.num_cols + 2,
            p_stuck_on=0.002, p_stuck_off=0.02,
            seed=97 * trial + 7,
        )
        try:
            result = remap(design, fm, nl.evaluate, nl.inputs, seed=trial)
        except RemapFailure as failure:
            assert failure.diagnosis.summary()
            continue
        report = validate_under_faults(
            result.design, nl.evaluate, nl.inputs, fm.faults
        )
        assert report.ok, f"{name} trial {trial}: remap verified but re-check failed"
        recovered += 1
    # 2% faults with spares is comfortably recoverable on these sizes.
    assert recovered >= 2, f"{name}: only {recovered}/3 trials recovered"
