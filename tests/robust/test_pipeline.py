"""Tests for the fault-tolerant synthesis pipeline (resynthesis stage)."""

import pytest

from repro import Compact, RemapFailure, synthesize_fault_tolerant
from repro.circuits import c17
from repro.crossbar import FaultMap, evaluate_with_faults
from repro.crossbar.faults import STUCK_OFF, Fault
from repro.robust import FaultTolerantResult


@pytest.fixture(scope="module")
def netlist():
    return c17()


@pytest.fixture(scope="module")
def base_design(netlist):
    return Compact(gamma=0.5, method="heuristic").synthesize_netlist(netlist).design


class TestPipeline:
    def test_clean_array_needs_no_resynthesis(self, netlist, base_design):
        fm = FaultMap(base_design.num_rows + 2, base_design.num_cols + 2, ())
        ft = synthesize_fault_tolerant(netlist, fm)
        assert isinstance(ft, FaultTolerantResult)
        assert not ft.resynthesized
        assert ft.resynthesis_attempts == 0
        assert ft.design is ft.remap.design

    def test_result_is_functional(self, netlist, base_design):
        r, c, _ = next(iter(base_design.cells()))
        fm = FaultMap(
            base_design.num_rows + 1, base_design.num_cols + 1,
            (Fault(r, c, STUCK_OFF),),
        )
        ft = synthesize_fault_tolerant(netlist, fm)
        for bits in range(1 << len(netlist.inputs)):
            env = {
                name: bool((bits >> i) & 1)
                for i, name in enumerate(netlist.inputs)
            }
            got = evaluate_with_faults(ft.design, env, fm.faults)
            assert got == netlist.evaluate(env)

    def test_hopeless_map_raises_with_attempt_count(self, netlist, base_design):
        faults = tuple(
            Fault(r, c, STUCK_OFF)
            for r in range(base_design.num_rows)
            for c in range(base_design.num_cols)
        )
        fm = FaultMap(base_design.num_rows, base_design.num_cols, faults)
        with pytest.raises(RemapFailure) as exc_info:
            synthesize_fault_tolerant(netlist, fm, n_orders=2)
        d = exc_info.value.diagnosis
        assert d.resynthesis_attempts >= 0
        assert "remap failed" in str(exc_info.value)
