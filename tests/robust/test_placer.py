"""Tests for the greedy matcher and the repair pass."""

import pytest

from repro import Compact
from repro.circuits import c17
from repro.crossbar import FaultMap, random_fault_map
from repro.crossbar.faults import STUCK_OFF, STUCK_ON, Fault
from repro.expr import parse
from repro.robust import (
    greedy_place,
    placement_violations,
    repair_sneak_paths,
)


@pytest.fixture(scope="module")
def c17_design():
    nl = c17()
    return Compact(gamma=0.5, method="heuristic").synthesize_netlist(nl).design


class TestGreedyPlace:
    def test_clean_array_keeps_identity(self, c17_design):
        d = c17_design
        fm = FaultMap(d.num_rows, d.num_cols, ())
        rm, cm, vs = greedy_place(d, fm, range(d.num_rows), range(d.num_cols))
        assert vs == []
        assert rm == {r: r for r in range(d.num_rows)}
        assert cm == {c: c for c in range(d.num_cols)}

    def test_routes_around_stuck_off(self, c17_design):
        d = c17_design
        r, c, _ = next(iter(d.cells()))
        fm = FaultMap(d.num_rows + 1, d.num_cols + 1, (Fault(r, c, STUCK_OFF),))
        rm, cm, vs = greedy_place(
            d, fm, range(d.num_rows + 1), range(d.num_cols + 1)
        )
        assert vs == []
        assert placement_violations(d, fm, rm, cm) == []

    def test_maps_are_injective(self, c17_design):
        d = c17_design
        fm = random_fault_map(d.num_rows + 2, d.num_cols + 2,
                              p_stuck_off=0.05, seed=11)
        rm, cm, _ = greedy_place(
            d, fm, range(d.num_rows + 2), range(d.num_cols + 2), seed=3
        )
        assert len(set(rm.values())) == d.num_rows
        assert len(set(cm.values())) == d.num_cols

    def test_too_small_allowance_rejected(self, c17_design):
        d = c17_design
        fm = FaultMap(d.num_rows, d.num_cols, ())
        with pytest.raises(ValueError):
            greedy_place(d, fm, range(d.num_rows - 1), range(d.num_cols))

    def test_deterministic_for_seed(self, c17_design):
        d = c17_design
        fm = random_fault_map(d.num_rows + 2, d.num_cols + 2,
                              p_stuck_off=0.08, seed=5)
        slots = (range(d.num_rows + 2), range(d.num_cols + 2))
        a = greedy_place(d, fm, *slots, seed=9)
        b = greedy_place(d, fm, *slots, seed=9)
        assert a == b


class TestRepairSneakPaths:
    def test_breaks_a_bridge_with_spare_slack(self):
        e = parse("a & b")
        d = Compact(gamma=0.5).synthesize_expr(e, name="f").design
        # Two shorts on the spare column; identity placement leaves it
        # unused, so rows 0 and 1 are bridged.
        fm = FaultMap(
            d.num_rows + 1, d.num_cols + 1,
            (Fault(0, d.num_cols, STUCK_ON), Fault(1, d.num_cols, STUCK_ON)),
        )
        rm = {r: r for r in range(d.num_rows)}
        cm = {c: c for c in range(d.num_cols)}
        assert placement_violations(d, fm, rm, cm)  # bridged before
        rm2, cm2, vs = repair_sneak_paths(
            d, fm, rm, cm, range(d.num_rows + 1), range(d.num_cols + 1)
        )
        assert vs == []

    def test_noop_when_already_clean(self, c17_design):
        d = c17_design
        fm = FaultMap(d.num_rows, d.num_cols, ())
        rm = {r: r for r in range(d.num_rows)}
        cm = {c: c for c in range(d.num_cols)}
        rm2, cm2, vs = repair_sneak_paths(
            d, fm, rm, cm, range(d.num_rows), range(d.num_cols)
        )
        assert (rm2, cm2, vs) == (rm, cm, [])
