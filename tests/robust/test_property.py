"""Property tests: random designs x random fault maps.

The ISSUE-level contract: for any design/fault-map pair, ``remap``
either returns a placement whose design computes the original function
under the full fault set, or raises :class:`RemapFailure` with a
diagnosis — no other exception may escape.
"""

import random

import pytest

from repro import Compact, RemapFailure, remap
from repro.crossbar import evaluate_with_faults, random_fault_map
from repro.expr import parse

EXPRESSIONS = [
    "a & b",
    "(a & b) | c",
    "(a | b) & (c | d)",
    "(a & ~b) | (~a & b)",
    "(a & b & c) | (d & ~a)",
]


def random_case(rng, expr_text):
    expr = parse(expr_text)
    design = Compact(gamma=0.5, method="heuristic").synthesize_expr(
        expr, name="f"
    ).design
    spare_r = rng.randint(0, 2)
    spare_c = rng.randint(0, 2)
    fm = random_fault_map(
        design.num_rows + spare_r,
        design.num_cols + spare_c,
        p_stuck_on=rng.choice([0.0, 0.02]),
        p_stuck_off=rng.choice([0.02, 0.08]),
        seed=rng.randrange(1 << 30),
    )
    return expr, design, fm


@pytest.mark.parametrize("trial", range(20))
def test_remap_succeeds_functionally_or_diagnoses(trial):
    rng = random.Random(1000 + trial)
    expr_text = rng.choice(EXPRESSIONS)
    expr, design, fm = random_case(rng, expr_text)
    inputs = sorted(expr.variables())
    reference = lambda env: {"f": expr.evaluate(env)}  # noqa: E731

    try:
        result = remap(design, fm, reference, inputs, seed=trial)
    except RemapFailure as failure:
        # The structured contract: a full diagnosis, never a bare crash.
        d = failure.diagnosis
        assert d.stages
        assert d.summary()
        assert isinstance(d.best_row_map, dict)
        return

    # Success must mean success under the *entire* fault map.
    for bits in range(1 << len(inputs)):
        env = {name: bool((bits >> i) & 1) for i, name in enumerate(inputs)}
        got = evaluate_with_faults(result.design, env, fm.faults)
        assert got == reference(env), (
            f"trial {trial}: remapped design differs at {env}"
        )
