"""Tests for the remap escalation chain and its failure contract."""

import pytest

from repro import Compact, RemapFailure, remap
from repro.circuits import c17
from repro.crossbar import FaultMap, evaluate_with_faults, random_fault_map
from repro.crossbar.faults import STUCK_OFF, Fault
from repro.robust import RemapResult


@pytest.fixture(scope="module")
def c17_case():
    nl = c17()
    design = Compact(gamma=0.5, method="heuristic").synthesize_netlist(nl).design
    return nl, design


def assert_remap_functional(nl, result):
    """The remapped design must compute nl's function under the faults."""
    for bits in range(1 << len(nl.inputs)):
        env = {
            name: bool((bits >> i) & 1) for i, name in enumerate(nl.inputs)
        }
        got = evaluate_with_faults(result.design, env, result.fault_map.faults)
        assert got == nl.evaluate(env)


class TestStages:
    def test_clean_array_is_identity(self, c17_case):
        nl, design = c17_case
        fm = FaultMap(design.num_rows, design.num_cols, ())
        result = remap(design, fm, nl.evaluate, nl.inputs)
        assert isinstance(result, RemapResult)
        assert result.stage == "identity"
        assert result.displacement == 0

    def test_permutation_avoids_a_fault(self, c17_case):
        nl, design = c17_case
        r, c, _ = next(iter(design.cells()))
        fm = FaultMap(design.num_rows, design.num_cols, (Fault(r, c, STUCK_OFF),))
        result = remap(design, fm, nl.evaluate, nl.inputs)
        assert result.stage in ("identity", "permute")
        assert result.spare_rows_used == 0 and result.spare_cols_used == 0
        assert_remap_functional(nl, result)

    def test_spares_used_when_needed(self, c17_case):
        nl, design = c17_case
        # Break every programmed cell of physical row 1 in the primary
        # region AND the same column pattern on every other row, so only
        # a spare row can host the displaced wordline.
        fm = random_fault_map(
            design.num_rows + 2, design.num_cols + 2,
            p_stuck_on=0.0, p_stuck_off=0.10, seed=13,
        )
        result = remap(design, fm, nl.evaluate, nl.inputs)
        assert result.stage in ("identity", "permute", "spares")
        assert_remap_functional(nl, result)

    def test_milp_method_works(self, c17_case):
        nl, design = c17_case
        r, c, _ = next(iter(design.cells()))
        fm = FaultMap(design.num_rows, design.num_cols, (Fault(r, c, STUCK_OFF),))
        result = remap(design, fm, nl.evaluate, nl.inputs, method="milp")
        assert result.method in ("identity", "milp")
        assert_remap_functional(nl, result)

    def test_spare_budget_respected(self, c17_case):
        nl, design = c17_case
        fm = random_fault_map(
            design.num_rows + 4, design.num_cols + 4,
            p_stuck_off=0.05, seed=3,
        )
        result = remap(
            design, fm, nl.evaluate, nl.inputs,
            max_spare_rows=1, max_spare_cols=1,
        )
        assert all(p < design.num_rows + 1 for p in result.row_map.values())
        assert all(p < design.num_cols + 1 for p in result.col_map.values())


class TestFailureContract:
    def test_infeasible_map_raises_with_diagnosis(self, c17_case):
        nl, design = c17_case
        faults = tuple(
            Fault(r, c, STUCK_OFF)
            for r in range(design.num_rows)
            for c in range(design.num_cols)
        )
        fm = FaultMap(design.num_rows, design.num_cols, faults)
        with pytest.raises(RemapFailure) as exc_info:
            remap(design, fm, nl.evaluate, nl.inputs)
        d = exc_info.value.diagnosis
        assert d.stages == ("identity", "permute")
        assert d.best_stage in d.stages
        assert len(d.best_violations) > 0
        assert len(d.blocking_faults) > 0
        assert d.best_row_map and d.best_col_map
        assert "remap failed" in d.summary()

    def test_bad_method_rejected(self, c17_case):
        nl, design = c17_case
        fm = FaultMap(design.num_rows, design.num_cols, ())
        with pytest.raises(ValueError, match="method"):
            remap(design, fm, nl.evaluate, nl.inputs, method="quantum")

    def test_too_small_array_rejected(self, c17_case):
        nl, design = c17_case
        fm = FaultMap(design.num_rows - 1, design.num_cols, ())
        with pytest.raises(ValueError, match="cannot hold"):
            remap(design, fm, nl.evaluate, nl.inputs)
