"""The asyncio socket front: pipelining, ordering, exact counters,
drain-under-storm semantics, and byte-identity with the threaded front.
"""

from __future__ import annotations

import json
import re
import socket
import threading
import time

import pytest

from repro.perf import counters
from repro.service.bench import build_trace
from repro.service.protocol import encode, make_request, ok_response
from repro.service.server import ServiceServer, fast_ok_frame
from repro.service.threaded import ThreadedServiceServer

SYNTH = {"expr": "(a & b) | ~c", "gamma": 0.5, "validate": True}


@pytest.fixture
def server():
    srv = ServiceServer(("tcp", "127.0.0.1", 0), jobs=2, queue_size=16)
    srv.start()
    yield srv
    srv.stop()


def _raw_conn(server):
    _kind, host, port = server.address
    sock = socket.create_connection((host, port), timeout=60)
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    return sock, sock.makefile("rb")


def test_fast_ok_frame_is_byte_identical_to_encode():
    results = [
        {"pong": True},
        {"metrics": {"rows": 3, "cols": 4}, "validation": None, "t": 0.125},
        {"unicode": "héllo ∧ wörld", "nested": {"a": [1, 2, {"b": None}]}},
        {"empty": {}},
    ]
    for request_id in (0, 17, "req-9", None):
        for elapsed in (0.0, 0.1234567, 2.5):
            for deduped in (False, True):
                for result in results:
                    encoded = json.dumps(result, sort_keys=True, separators=(",", ":"))
                    assert fast_ok_frame(
                        request_id, encoded, deduped=deduped, elapsed_s=elapsed
                    ) == encode(ok_response(
                        request_id, result,
                        cached=True, deduped=deduped, elapsed_s=elapsed,
                    ))


def test_pipelined_batches_stay_ordered_and_counters_stay_exact(server):
    """N clients x M pipelined identical frames: no dropped or misordered
    responses, and the ``service_*`` counters add up exactly."""
    counters.reset()
    clients, per_client = 6, 20

    # Warm the cache with one sequential request (counts as 1 submit,
    # 1 completion, 1 miss).
    sock, reader = _raw_conn(server)
    sock.sendall(encode(make_request("synth", SYNTH, request_id=0)))
    assert json.loads(reader.readline())["ok"] is True
    sock.close()

    failures: list[str] = []

    def _storm(conn_index: int) -> None:
        sock, reader = _raw_conn(server)
        try:
            sock.sendall(b"".join(
                encode(make_request("synth", SYNTH, request_id=i))
                for i in range(per_client)
            ))
            for i in range(per_client):
                frame = json.loads(reader.readline())
                if not frame.get("ok"):
                    failures.append(f"conn {conn_index} frame {i}: {frame}")
                elif frame["id"] != i:
                    failures.append(
                        f"conn {conn_index}: expected id {i}, got {frame['id']}"
                    )
                elif frame["cached"] is not True:
                    failures.append(f"conn {conn_index} frame {i}: not cached")
        finally:
            sock.close()

    threads = [threading.Thread(target=_storm, args=(c,)) for c in range(clients)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    assert not failures, failures[:5]

    total = clients * per_client
    snap = counters.snapshot()
    # Every admitted request counts exactly once, whichever path served it.
    assert snap["service_jobs_submitted"] == total + 1
    assert snap["service_jobs_completed"] == 1
    assert snap.get("service_cache_misses", 0) == 1
    # Each storm response was a cache hit or coalesced onto one within
    # its pipelined batch; nothing was deduped (no jobs were in flight).
    hits = snap.get("service_cache_hits", 0)
    coalesced = snap.get("service_batch_coalesced", 0)
    assert hits + coalesced == total
    assert coalesced >= 1  # at least some frames shared a batch lookup
    assert snap.get("service_dedup_hits", 0) == 0


def test_distinct_pipelined_frames_are_not_coalesced(server):
    counters.reset()
    sock, reader = _raw_conn(server)
    exprs = ["a & b", "a | b", "a ^ b"]
    sock.sendall(b"".join(
        encode(make_request("synth", {"expr": expr}, request_id=i))
        for i, expr in enumerate(exprs)
    ))
    for i in range(len(exprs)):
        frame = json.loads(reader.readline())
        assert frame["ok"] is True and frame["id"] == i
    sock.close()
    assert counters.get("service_batch_coalesced") == 0
    assert counters.get("service_jobs_submitted") == len(exprs)


def test_frames_after_drain_get_structured_draining_errors():
    """A frame admitted after drain begins is answered with a structured
    ``draining`` error on a live connection — never a torn socket."""
    server = ServiceServer(("tcp", "127.0.0.1", 0), jobs=1, queue_size=8,
                           drain_timeout=30.0)
    server.start()
    sock, reader = _raw_conn(server)
    try:
        sock.sendall(encode(make_request("ping", {}, request_id=1)))
        assert json.loads(reader.readline())["ok"] is True

        # A slow job keeps the engine draining long enough to race frames in.
        slow_sock, slow_reader = _raw_conn(server)
        slow_sock.sendall(encode(make_request("sleep", {"seconds": 2.0},
                                              request_id=2)))
        deadline = time.monotonic() + 10.0
        while not server.engine.stats()["active_jobs"]:
            assert time.monotonic() < deadline, "sleep job never started"
            time.sleep(0.02)

        stopper = threading.Thread(target=server.stop)
        stopper.start()
        deadline = time.monotonic() + 10.0
        while not server._draining:
            assert time.monotonic() < deadline, "drain never began"
            time.sleep(0.02)

        # Job frames arriving mid-drain: structured error, same connection.
        sock.sendall(encode(make_request("synth", {"expr": "a & b"},
                                         request_id=3)))
        frame = json.loads(reader.readline())
        assert frame["ok"] is False
        assert frame["error"]["code"] == "draining"
        # ping/stats are still answered while draining.
        sock.sendall(encode(make_request("ping", {}, request_id=4)))
        assert json.loads(reader.readline())["ok"] is True

        # The in-flight job still completes cleanly.
        slow_frame = json.loads(slow_reader.readline())
        assert slow_frame["ok"] is True
        assert slow_frame["result"]["slept_s"] == 2.0
        slow_sock.close()
        stopper.join(timeout=30)
        assert not stopper.is_alive()
    finally:
        sock.close()
        server.stop()


def _replay_raw(server_cls, trace: list[dict]) -> list[bytes]:
    """Replay a trace sequentially over one raw socket; returns frames."""
    server = server_cls(("tcp", "127.0.0.1", 0), jobs=2, queue_size=16)
    server.start()
    try:
        sock, reader = _raw_conn(server)
        frames = []
        for i, entry in enumerate(trace):
            sock.sendall(encode(make_request(entry["method"], entry["params"],
                                             request_id=i)))
            frames.append(reader.readline())
        sock.close()
        return frames
    finally:
        server.stop()


def test_async_front_is_byte_identical_to_threaded_front():
    """Acceptance: the two fronts produce byte-identical responses on the
    trace-replay suite (modulo the measured ``elapsed_s``)."""
    trace = build_trace(requests=30, repeat_rate=0.5, seed=3)
    threaded = _replay_raw(ThreadedServiceServer, trace)
    async_frames = _replay_raw(ServiceServer, trace)
    assert len(threaded) == len(async_frames) == len(trace)
    # elapsed_s and synth_time_s are measured wall times; everything
    # else must match byte for byte.
    scrub = re.compile(rb'"(elapsed_s|synth_time_s)":[0-9eE.+-]+')
    for i, (a, b) in enumerate(zip(threaded, async_frames)):
        assert scrub.sub(b'"elapsed_s":0', a) == scrub.sub(b'"elapsed_s":0', b), (
            f"frame {i} differs between fronts"
        )


def test_threaded_front_shares_the_drain_and_bounded_wait_fixes():
    with ThreadedServiceServer(("tcp", "127.0.0.1", 0), jobs=1) as server:
        assert server.stats()["server"]["front"] == "threaded"
        sock, reader = _raw_conn(server)
        sock.sendall(encode(make_request("ping", {}, request_id=1)))
        assert json.loads(reader.readline())["ok"] is True
        server._begin_drain()
        sock.sendall(encode(make_request("synth", {"expr": "a"}, request_id=2)))
        frame = json.loads(reader.readline())
        assert frame["ok"] is False and frame["error"]["code"] == "draining"
        sock.close()


def test_oversized_frame_is_rejected_with_protocol_error(server):
    sock, reader = _raw_conn(server)
    # A single frame larger than the limit, sent without a newline first:
    # the server must answer with a protocol error rather than buffer it.
    from repro.service.protocol import MAX_LINE_BYTES

    sock.sendall(b'{"v": 1, "id": 1, "method": "ping", "params": {"x": "')
    chunk = b"a" * (1 << 20)
    sent = 0
    try:
        while sent <= MAX_LINE_BYTES:
            sock.sendall(chunk)
            sent += len(chunk)
    except (BrokenPipeError, ConnectionResetError):
        pass  # server already gave up on the frame; fine
    frame = json.loads(reader.readline())
    assert frame["ok"] is False
    assert frame["error"]["code"] == "protocol_error"
    sock.close()
