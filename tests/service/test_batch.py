"""Batch request kinds: correctness, dedup, and graceful degradation."""

from __future__ import annotations

import pytest

from repro.bench.suites import circuit
from repro.crossbar import (
    design_from_json,
    fault_map_from_json,
    fault_map_to_json,
    random_fault_map,
    validate_under_faults,
)
from repro.io import write_blif
from repro.perf import counters
from repro.service import ServiceClient
from repro.service.engine import Engine
from repro.service.jobs import execute
from repro.service.server import ServiceServer


@pytest.fixture(scope="module")
def c17_blif() -> str:
    return write_blif(circuit("c17"))


@pytest.fixture(scope="module")
def c17_design(c17_blif) -> str:
    payload = execute("synth", {
        "circuit": {"format": "blif", "text": c17_blif}, "validate": False,
    })
    assert payload["ok"]
    return payload["result"]["design_json"]


def _maps(design_json: str, count: int, seed0: int = 0) -> list[str]:
    design = design_from_json(design_json)
    return [
        fault_map_to_json(random_fault_map(
            design.num_rows, design.num_cols,
            p_stuck_on=0.01, p_stuck_off=0.05, seed=seed0 + i,
        ))
        for i in range(count)
    ]


def test_validate_batch_matches_single_validation(c17_blif, c17_design):
    maps = _maps(c17_design, 6)
    payload = execute("validate_batch", {
        "design_json": c17_design,
        "circuit": {"format": "blif", "text": c17_blif},
        "fault_maps": maps,
    })
    assert payload["ok"]
    result = payload["result"]
    assert result["count"] == 6
    design = design_from_json(c17_design)
    netlist = circuit("c17")
    for raw, verdict in zip(maps, result["results"]):
        fault_map = fault_map_from_json(raw)
        report = validate_under_faults(
            design, netlist.evaluate, netlist.inputs, fault_map.faults
        )
        assert verdict["ok"] == report.ok
        assert verdict["signature"] == fault_map.signature()


def test_validate_batch_dedups_identical_maps(c17_blif, c17_design):
    maps = _maps(c17_design, 3)
    payload = execute("validate_batch", {
        "design_json": c17_design,
        "circuit": {"format": "blif", "text": c17_blif},
        "fault_maps": maps + maps,  # every map twice
    })
    result = payload["result"]
    assert result["count"] == 6
    assert result["distinct"] == 3
    assert result["results"][:3] == result["results"][3:]


def test_validate_batch_rejects_bad_map_with_index(c17_blif, c17_design):
    maps = _maps(c17_design, 2)
    payload = execute("validate_batch", {
        "design_json": c17_design,
        "circuit": {"format": "blif", "text": c17_blif},
        "fault_maps": [maps[0], "{not json", maps[1]],
    })
    assert not payload["ok"]
    assert "fault_maps[1]" in payload["error"]["message"]


def test_validate_batch_needs_nonempty_list(c17_blif, c17_design):
    for bad in ([], None, "nope"):
        payload = execute("validate_batch", {
            "design_json": c17_design,
            "circuit": {"format": "blif", "text": c17_blif},
            "fault_maps": bad,
        })
        assert not payload["ok"]


def test_map_batch_statistics_and_failures(c17_blif, c17_design):
    design = design_from_json(c17_design)
    # Spare-line physical arrays so some remaps can succeed.
    maps = [
        fault_map_to_json(random_fault_map(
            design.num_rows + 1, design.num_cols + 1,
            p_stuck_on=0.01, p_stuck_off=0.05, seed=i,
        ))
        for i in range(5)
    ]
    payload = execute("map_batch", {
        "design_json": c17_design,
        "circuit": {"format": "blif", "text": c17_blif},
        "fault_maps": maps,
        "spare_rows": 1,
        "spare_cols": 1,
    })
    assert payload["ok"]
    result = payload["result"]
    assert result["count"] == 5
    for outcome in result["results"]:
        if outcome["ok"]:
            assert outcome["stage"] in {"identity", "permute", "spares"}
            assert "design_json" not in outcome  # statistics only
        else:
            assert outcome["stage"] == "failed"
            assert outcome["error"]


def test_map_batch_rejects_expressions(c17_design):
    payload = execute("map_batch", {
        "design_json": c17_design,
        "expr": "a & b",
        "fault_maps": _maps(c17_design, 1),
    })
    assert not payload["ok"]


def test_engine_submit_batch_merges_chunks_and_shrinks(c17_blif, c17_design):
    counters.reset()
    engine = Engine(jobs=1, queue_size=1)
    try:
        # Occupy the single queue slot so the first batch submission is
        # rejected with 'overloaded' and the batch must shrink.
        busy, _ = engine.submit("sleep", {"seconds": 0.6})
        maps = _maps(c17_design, 4)
        future, info = engine.submit_batch("validate_batch", {
            "design_json": c17_design,
            "circuit": {"format": "blif", "text": c17_blif},
            "fault_maps": maps,
        })
        payload = future.result()
        busy.result()
        assert payload["ok"]
        assert payload["result"]["count"] == 4
        assert payload["result"]["chunks"] >= 1
        assert counters.get("service_batch_shrinks") >= 1
        assert counters.get("service_batch_chunks") >= 1
        assert {"cached", "deduped"} <= set(info)
    finally:
        engine.shutdown(5.0)


def test_engine_submit_batch_falls_through_for_small_batches(c17_blif, c17_design):
    engine = Engine(jobs=1, queue_size=8)
    try:
        future, _info = engine.submit_batch("validate_batch", {
            "design_json": c17_design,
            "circuit": {"format": "blif", "text": c17_blif},
            "fault_maps": _maps(c17_design, 1),
        })
        payload = future.result()
        assert payload["ok"]
        # The single-job path has no chunk accounting.
        assert "chunks" not in payload["result"]
    finally:
        engine.shutdown(5.0)


def test_batch_over_the_wire_and_cached(tmp_path, c17_blif, c17_design):
    server = ServiceServer(
        ("tcp", "127.0.0.1", 0), jobs=2, queue_size=16, cache_dir=tmp_path / "cache"
    )
    server.start()
    try:
        _kind, host, port = server.address
        with ServiceClient(tcp=(host, port), timeout=120.0) as client:
            params = {
                "design_json": c17_design,
                "circuit": {"format": "blif", "text": c17_blif},
                "fault_maps": _maps(c17_design, 4),
            }
            first = client.call("validate_batch", params)
            assert first["ok"]
            again = client.call("validate_batch", params)
            assert again["ok"]
            assert again["result"]["results"] == first["result"]["results"]
            assert again["cached"] is True
    finally:
        server.stop()
