"""Content-addressed cache: canonical keys, LRU front, disk store."""

from __future__ import annotations

import json

import pytest

from repro.io import write_blif
from repro.perf import counters
from repro.service.cache import ResultCache, canonical_request, request_key

BLIF = """\
.model and2
.inputs a b
.outputs f
.names a b f
11 1
.end
"""

BLIF_NOISY = """\
# a comment the canonical form must not see
.model and2
.inputs  a   b
.outputs f

.names a b f
11 1
.end
"""


# -- key derivation ----------------------------------------------------------------

def test_expression_formatting_does_not_change_the_key():
    keys = {
        request_key("synth", {"expr": expr})
        for expr in ("a&b", "a & b", "(a) & (b)", "  a &b ")
    }
    assert len(keys) == 1


def test_circuit_text_is_canonicalised_before_hashing():
    key_clean = request_key("synth", {"circuit": {"format": "blif", "text": BLIF}})
    key_noisy = request_key("synth", {"circuit": {"format": "blif", "text": BLIF_NOISY}})
    assert key_clean == key_noisy


def test_omitted_knobs_hash_like_their_defaults():
    implicit = request_key("synth", {"expr": "a & b"})
    explicit = request_key("synth", {
        "expr": "a & b", "gamma": 0.5, "method": "auto", "backend": "highs",
        "time_limit": 60.0, "validate": True, "order": None,
    })
    assert implicit == explicit


def test_different_knobs_and_functions_get_different_keys():
    base = request_key("synth", {"expr": "a & b"})
    assert request_key("synth", {"expr": "a & b", "gamma": 0.9}) != base
    assert request_key("synth", {"expr": "a | b"}) != base
    assert request_key("synth", {"expr": "a & b", "order": ["b", "a"]}) != base


def test_uncacheable_inputs_raise_value_error():
    with pytest.raises(ValueError):
        canonical_request("ping", {})
    with pytest.raises(ValueError):
        canonical_request("synth", {})  # neither expr nor circuit
    with pytest.raises(ValueError):
        canonical_request("synth", {"circuit": {"format": "cobol", "text": ""}})


def test_map_key_covers_design_fault_map_and_knobs(c17_netlist):
    from repro.core import Compact
    from repro.crossbar import design_to_json, fault_map_to_json, random_fault_map

    design = Compact().synthesize_netlist(c17_netlist).design
    fault_map = random_fault_map(16, 16, p_stuck_off=0.05, seed=3)
    params = {
        "circuit": {"format": "blif", "text": write_blif(c17_netlist)},
        "design_json": design_to_json(design),
        "fault_map": fault_map_to_json(fault_map),
    }
    base = request_key("map", params)
    assert request_key("map", dict(params, seed=0)) == base  # explicit default
    assert request_key("map", dict(params, seed=1)) != base
    other_map = fault_map_to_json(random_fault_map(16, 16, p_stuck_off=0.05, seed=4))
    assert request_key("map", dict(params, fault_map=other_map)) != base


# -- storage -----------------------------------------------------------------------

def test_lru_eviction_and_counters():
    counters.reset()
    cache = ResultCache(capacity=2)
    cache.put("k1", {"n": 1})
    cache.put("k2", {"n": 2})
    assert cache.get("k1") == {"n": 1}  # refreshes k1; k2 is now LRU
    cache.put("k3", {"n": 3})
    assert cache.get("k2") is None      # evicted (memory-only cache)
    assert cache.get("k1") == {"n": 1}
    assert cache.get("k3") == {"n": 3}
    stats = cache.stats()
    assert stats["evictions"] == 1
    assert stats["stores"] == 3
    assert stats["hits"] == 3 and stats["misses"] == 1
    assert counters.get("service_cache_evictions") == 1
    assert counters.get("service_cache_hits") == 3
    assert counters.get("service_cache_misses") == 1
    assert counters.get("service_cache_stores") == 3


def test_get_hands_back_a_fresh_object():
    cache = ResultCache(capacity=4)
    cache.put("k", {"inner": {"x": 1}})
    first = cache.get("k")
    first["inner"]["x"] = 99
    assert cache.get("k") == {"inner": {"x": 1}}


def test_disk_store_survives_a_new_cache_instance(tmp_path):
    cache = ResultCache(capacity=4, directory=tmp_path)
    cache.put("deadbeef", {"answer": 42})
    reborn = ResultCache(capacity=4, directory=tmp_path)
    assert reborn.get("deadbeef") == {"answer": 42}
    assert reborn.stats()["hits"] == 1
    assert reborn.stats()["entries_disk"] == 1


def test_memory_eviction_keeps_the_disk_copy(tmp_path):
    cache = ResultCache(capacity=1, directory=tmp_path)
    cache.put("k1", {"n": 1})
    cache.put("k2", {"n": 2})  # evicts k1 from memory
    assert cache.stats()["evictions"] == 1
    assert cache.get("k1") == {"n": 1}  # reloaded from disk


def test_corrupted_disk_entry_is_a_miss_and_gets_deleted(tmp_path):
    cache = ResultCache(capacity=4, directory=tmp_path)
    cache.put("k1", {"n": 1})
    cache.clear()
    path = tmp_path / "k1.json"
    path.write_text("{ not json")
    assert cache.get("k1") is None
    assert not path.exists()
    # Wrong-schema entries are equally untrusted.
    path.write_text(json.dumps({"schema": "other/9", "result": {"n": 1}}))
    assert cache.get("k1") is None
    assert not path.exists()


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        ResultCache(capacity=0)


def test_synth_key_distinguishes_layer_counts():
    base = request_key("synth", {"expr": "a & b"})
    explicit = request_key("synth", {"expr": "a & b", "layers": 1})
    layered = request_key("synth", {"expr": "a & b", "layers": 2})
    assert base == explicit  # layers=1 is the default, not a new key
    assert layered != base
