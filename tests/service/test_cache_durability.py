"""Torn-write and durability regressions for the on-disk result cache."""

from __future__ import annotations

import json
import os

from repro.service.cache import CACHE_KEY_SCHEMA, ResultCache


def _entry_files(directory):
    return sorted(p for p in directory.iterdir() if p.suffix == ".json")


def test_disk_put_is_atomic_and_leaves_no_temp_files(tmp_path):
    cache = ResultCache(capacity=4, directory=tmp_path)
    cache.put("k" * 64, {"value": 1})
    files = _entry_files(tmp_path)
    assert len(files) == 1
    entry = json.loads(files[0].read_text())
    assert entry["schema"] == CACHE_KEY_SCHEMA
    assert entry["result"] == {"value": 1}
    leftovers = [p for p in tmp_path.iterdir() if ".tmp." in p.name]
    assert leftovers == []


def test_torn_disk_entry_is_dropped_not_served(tmp_path):
    key = "a" * 64
    cache = ResultCache(capacity=4, directory=tmp_path)
    cache.put(key, {"value": 42})
    # Simulate a torn write (power loss mid-flush): truncate the entry.
    path = _entry_files(tmp_path)[0]
    data = path.read_bytes()
    path.write_bytes(data[: len(data) // 2])
    # A fresh cache (cold memory front) must treat it as a miss and
    # remove the torn file so it cannot shadow a future good entry.
    cold = ResultCache(capacity=4, directory=tmp_path)
    assert cold.get(key) is None
    assert _entry_files(tmp_path) == []
    # And a rewrite round-trips again.
    cold.put(key, {"value": 43})
    fresh = ResultCache(capacity=4, directory=tmp_path)
    assert fresh.get(key) == {"value": 43}


def test_disk_put_survives_fsync_failure(tmp_path, monkeypatch):
    cache = ResultCache(capacity=4, directory=tmp_path)

    def broken_fsync(fd):
        raise OSError("no fsync for you")

    monkeypatch.setattr(os, "fsync", broken_fsync)
    cache.put("b" * 64, {"value": 7})  # must not raise
    leftovers = [p for p in tmp_path.iterdir() if ".tmp." in p.name]
    assert leftovers == []
    # The memory front still serves the result even though the disk
    # store failed.
    assert cache.get("b" * 64) == {"value": 7}


def test_wrong_schema_entry_is_dropped(tmp_path):
    key = "c" * 64
    cache = ResultCache(capacity=4, directory=tmp_path)
    (tmp_path / f"{key}.json").write_text(
        json.dumps({"schema": "something-else/9", "result": {"value": 1}})
    )
    assert cache.get(key) is None
    assert _entry_files(tmp_path) == []
