"""Sharded cache: parity with the unsharded cache, per-shard LRU
bounds, the incremental disk census, remote tiers, the key memo, and
the validate fault-map key regression.
"""

from __future__ import annotations

import random
import threading

import pytest

from repro.perf import counters
from repro.service.cache import ResultCache, request_key
from repro.service.remote import DirectoryRemoteTier, InMemoryRemoteTier, RemoteTier


def _keys(count: int) -> list[str]:
    # Realistic keys: hex digests, so the prefix-shard router engages.
    import hashlib

    return [hashlib.sha256(str(i).encode()).hexdigest() for i in range(count)]


# -- shard parity and bounds -------------------------------------------------------

def test_sharded_cache_matches_unsharded_get_put_parity():
    keys = _keys(64)
    rng = random.Random(11)
    flat = ResultCache(capacity=1024, shards=1)
    sharded = ResultCache(capacity=1024, shards=8)
    for step in range(400):
        key = keys[rng.randrange(len(keys))]
        if rng.random() < 0.4:
            value = {"step": step, "key": key}
            flat.put(key, value)
            sharded.put(key, value)
        else:
            assert flat.get(key) == sharded.get(key)
    for key in keys:
        assert flat.get(key) == sharded.get(key)


def test_per_shard_lru_bounds_and_total_capacity():
    cache = ResultCache(capacity=8, shards=4)
    for key in _keys(100):
        cache.put(key, {"k": key})
    stats = cache.stats()
    assert stats["shards"] == 4
    assert len(stats["shard_sizes"]) == 4
    assert all(size <= 2 for size in stats["shard_sizes"])  # 8 / 4 per shard
    assert stats["entries_mem"] <= 8
    assert stats["evictions"] >= 100 - 8


def test_shards_are_clamped_to_capacity_and_default_preserves_global_lru():
    # shards > capacity cannot give every shard a slot; clamp instead.
    cache = ResultCache(capacity=2, shards=16)
    assert cache.stats()["shards"] == 2
    with pytest.raises(ValueError):
        ResultCache(capacity=4, shards=0)


def test_sharded_lookups_do_not_serialize_across_shards():
    """A slow disk read on one key must not block another shard's hit."""
    cache = ResultCache(capacity=64, shards=8)
    keys = _keys(8)
    for key in keys:
        cache.put(key, {"k": key})
    errors: list[str] = []

    def _reader(key: str) -> None:
        for _ in range(200):
            if cache.get(key) != {"k": key}:
                errors.append(key)
                return

    threads = [threading.Thread(target=_reader, args=(key,)) for key in keys]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30)
    assert not errors


# -- disk census -------------------------------------------------------------------

def test_stats_never_globs_the_cache_directory(tmp_path, monkeypatch):
    cache = ResultCache(capacity=8, directory=tmp_path)
    for key in _keys(3):
        cache.put(key, {"k": key})
    assert cache.stats()["entries_disk"] == 3

    from pathlib import Path

    def _no_glob(self, pattern):
        raise AssertionError("stats() must not glob the cache directory")

    monkeypatch.setattr(Path, "glob", _no_glob)
    assert cache.stats()["entries_disk"] == 3  # census, not a scan


def test_disk_census_survives_rebirth_and_tracks_drops(tmp_path):
    keys = _keys(3)
    cache = ResultCache(capacity=8, directory=tmp_path, shards=4)
    for key in keys:
        cache.put(key, {"k": key})

    reborn = ResultCache(capacity=8, directory=tmp_path, shards=4)
    assert reborn.stats()["entries_disk"] == 3
    # Corrupt one entry: the lookup discards it and the census follows.
    (tmp_path / f"{keys[0]}.json").write_text("{ torn")
    reborn.clear()
    assert reborn.get(keys[0]) is None
    assert reborn.stats()["entries_disk"] == 2
    assert reborn.get(keys[1]) == {"k": keys[1]}


# -- remote tier -------------------------------------------------------------------

def test_in_memory_remote_tier_shares_results_between_nodes():
    counters.reset()
    remote = InMemoryRemoteTier()
    node_a = ResultCache(capacity=8, shards=2, remote=remote)
    node_b = ResultCache(capacity=8, shards=2, remote=remote)
    key = _keys(1)[0]
    node_a.put(key, {"answer": 42})
    assert len(remote) == 1
    assert node_b.get(key) == {"answer": 42}  # remote hit, not a recompute
    assert counters.get("service_cache_remote_stores") == 1
    assert counters.get("service_cache_remote_hits") == 1
    # Now in node_b's memory front: the next get is purely local.
    assert node_b.get(key) == {"answer": 42}
    assert counters.get("service_cache_remote_hits") == 1


def test_directory_remote_tier_writes_through_to_local_disk(tmp_path):
    shared = tmp_path / "shared"
    remote = DirectoryRemoteTier(shared)
    node_a = ResultCache(capacity=8, remote=remote)
    key = _keys(1)[0]
    node_a.put(key, {"n": 1})
    assert (shared / f"{key}.json").exists()

    local_b = tmp_path / "node-b"
    node_b = ResultCache(capacity=8, directory=local_b, remote=remote)
    assert node_b.get(key) == {"n": 1}
    # The remote copy was written through to node_b's local disk store.
    assert (local_b / f"{key}.json").exists()
    assert node_b.stats()["entries_disk"] == 1


def test_failing_remote_tier_never_breaks_the_cache():
    class Broken(RemoteTier):
        def get(self, key):
            raise OSError("network down")

        def put(self, key, method, encoded):
            raise OSError("network down")

    cache = ResultCache(capacity=8, remote=Broken())
    key = _keys(1)[0]
    cache.put(key, {"n": 1})          # remote store failure is swallowed
    assert cache.get(key) == {"n": 1}
    cache.clear()
    assert cache.get(key) is None     # remote get failure is a miss


def test_stats_reports_shard_layout_and_remote_tier():
    cache = ResultCache(capacity=16, shards=4, remote=InMemoryRemoteTier())
    stats = cache.stats()
    assert stats["shards"] == 4
    assert stats["remote_tier"] == "InMemoryRemoteTier"
    assert ResultCache(capacity=4).stats()["remote_tier"] is None


# -- validate fault-map key regression ---------------------------------------------

def test_validate_key_covers_the_fault_map(c17_netlist):
    """Regression: a faulted validate request must not hash to the
    fault-free request's key (it used to, returning wrong cached
    verdicts for any faulted validate after a clean one)."""
    from repro.core import Compact
    from repro.crossbar import design_to_json, fault_map_to_json, random_fault_map
    from repro.io import write_blif

    design = Compact().synthesize_netlist(c17_netlist).design
    params = {
        "circuit": {"format": "blif", "text": write_blif(c17_netlist)},
        "design_json": design_to_json(design),
    }
    clean = request_key("validate", params)
    map_a = fault_map_to_json(random_fault_map(16, 16, p_stuck_off=0.05, seed=1))
    map_b = fault_map_to_json(random_fault_map(16, 16, p_stuck_off=0.05, seed=2))
    faulted_a = request_key("validate", dict(params, fault_map=map_a))
    faulted_b = request_key("validate", dict(params, fault_map=map_b))
    assert faulted_a != clean
    assert faulted_b != clean
    assert faulted_a != faulted_b
    # Explicit None is the fault-free request (key unchanged).
    assert request_key("validate", dict(params, fault_map=None)) == clean


# -- engine key memo ---------------------------------------------------------------

def test_engine_memoizes_request_keys_and_serves_encoded_hits():
    from repro.service.engine import Engine

    counters.reset()
    cache = ResultCache(capacity=16, shards=2)
    with Engine(jobs=1, queue_size=4, cache=cache) as engine:
        params = {"expr": "a & b", "gamma": 0.5}
        key = engine.request_key_memo("synth", params)
        assert key == request_key("synth", params)
        assert counters.get("service_key_memo_hits") == 0
        assert engine.request_key_memo("synth", params) == key
        assert counters.get("service_key_memo_hits") == 1

        # The inline fast path: nothing cached -> None (and no miss is
        # counted; the engine's own submit lookup counts it once).  Its
        # probe is itself a memo hit.
        assert engine.cached_encoded("synth", params) is None
        assert counters.get("service_cache_misses") == 0
        assert counters.get("service_key_memo_hits") == 2
        cache.put(key, {"the": "result"})
        submitted = counters.get("service_jobs_submitted")
        encoded = engine.cached_encoded("synth", params)
        assert encoded == '{"the":"result"}'
        assert counters.get("service_jobs_submitted") == submitted + 1
        assert counters.get("service_key_memo_hits") == 3

        # Unparseable payloads memoize their failure too.
        bad = {"expr": "(("}
        assert engine.request_key_memo("synth", bad) is None
        assert engine.request_key_memo("synth", bad) is None
        assert counters.get("service_key_memo_hits") == 4
        assert engine.cached_encoded("synth", bad) is None
        assert counters.get("service_key_memo_hits") == 5
