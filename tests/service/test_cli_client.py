"""Acceptance: ``repro client`` output is byte-identical to single-shot
``repro synth`` / ``repro map`` output, both cold and cached.

The only sanctioned difference is the ``synth time`` wall-clock line,
which the client omits (a timing measurement cannot be byte-stable).
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.io import write_blif
from repro.service.server import ServiceServer


@pytest.fixture(scope="module")
def service():
    server = ServiceServer(("tcp", "127.0.0.1", 0), jobs=2, queue_size=16)
    server.start()
    yield server.describe_address()
    server.stop()


def _run(capsys, argv):
    rc = main(argv)
    return rc, capsys.readouterr().out


def _without_time_line(text: str) -> str:
    return "\n".join(
        line for line in text.splitlines() if not line.startswith("synth time")
    ) + "\n"


EXPR = "(a & b) | (~a & c)"


def test_client_synth_matches_single_shot(service, capsys, tmp_path):
    direct_json = tmp_path / "direct.json"
    cold_json = tmp_path / "cold.json"
    cached_json = tmp_path / "cached.json"

    rc, direct_out = _run(capsys, ["synth", "--expr", EXPR, "--json", str(direct_json)])
    assert rc == 0
    rc, cold_out = _run(capsys, [
        "client", "--tcp", service, "synth", "--expr", EXPR, "--json", str(cold_json),
    ])
    assert rc == 0
    rc, cached_out = _run(capsys, [
        "client", "--tcp", service, "synth", "--expr", EXPR, "--json", str(cached_json),
    ])
    assert rc == 0

    assert direct_json.read_bytes() == cold_json.read_bytes() == cached_json.read_bytes()
    # Reports match exactly once the wall-clock line is removed; the
    # cold and cached client runs are byte-identical to each other.
    expected = _without_time_line(direct_out).replace(
        f"wrote {direct_json}", f"wrote {cold_json}"
    )
    assert cold_out == expected
    assert cached_out == cold_out.replace(str(cold_json), str(cached_json))


def test_client_map_matches_single_shot(service, capsys, tmp_path, c17_netlist):
    blif = tmp_path / "c17.blif"
    blif.write_text(write_blif(c17_netlist))
    design = tmp_path / "design.json"
    rc, _ = _run(capsys, ["synth", str(blif), "--json", str(design)])
    assert rc == 0

    dims = json.loads(design.read_text())
    rows, cols = dims["rows"] + 2, dims["cols"] + 2
    fault_map = tmp_path / "faults.json"
    rc, _ = _run(capsys, [
        "faults", str(rows), str(cols), "--p-stuck-off", "0.03",
        "--seed", "5", "--out", str(fault_map),
    ])
    assert rc == 0

    direct_json = tmp_path / "m_direct.json"
    cold_json = tmp_path / "m_cold.json"
    cached_json = tmp_path / "m_cached.json"
    base = [str(design), "--circuit", str(blif), "--fault-map", str(fault_map)]

    rc, direct_out = _run(capsys, ["map", *base, "--json", str(direct_json)])
    assert rc == 0
    rc, cold_out = _run(capsys, [
        "client", "--tcp", service, "map", *base, "--json", str(cold_json),
    ])
    assert rc == 0
    rc, cached_out = _run(capsys, [
        "client", "--tcp", service, "map", *base, "--json", str(cached_json),
    ])
    assert rc == 0

    assert direct_json.read_bytes() == cold_json.read_bytes() == cached_json.read_bytes()
    # Map reports carry no timing line: full byte identity, cold and cached.
    assert cold_out == direct_out.replace(f"wrote {direct_json}", f"wrote {cold_json}")
    assert cached_out == cold_out.replace(str(cold_json), str(cached_json))


def test_client_validate_matches_single_shot(service, capsys, tmp_path, c17_netlist):
    blif = tmp_path / "c17.blif"
    blif.write_text(write_blif(c17_netlist))
    design = tmp_path / "design.json"
    rc, _ = _run(capsys, ["synth", str(blif), "--json", str(design)])
    assert rc == 0

    rc_direct, direct_out = _run(capsys, ["validate", str(design), "--circuit", str(blif)])
    rc_client, client_out = _run(capsys, [
        "client", "--tcp", service, "validate", str(design), "--circuit", str(blif),
    ])
    assert rc_direct == rc_client == 0
    assert client_out == direct_out


def test_client_ping_and_stats(service, capsys):
    rc, out = _run(capsys, ["client", "--tcp", service, "ping"])
    assert rc == 0 and out == "pong\n"
    rc, out = _run(capsys, ["client", "--tcp", service, "stats"])
    assert rc == 0
    stats = json.loads(out)
    assert stats["engine"]["workers"] == 2
