"""Resilient-client tests: retries, backoff, reconnect, deadlines, close.

A scripted single-purpose TCP server plays the failure side of each
scenario so the tests stay deterministic: it answers each request frame
by popping the next behaviour from a queue ('ok', 'overloaded', 'drop',
('sleep', s)).
"""

from __future__ import annotations

import random
import socket
import threading
import time
from collections import deque

import pytest

from repro.perf import counters
from repro.service import RetryPolicy, ServiceClient, ServiceClientError, ServiceUnavailable
from repro.service.protocol import decode_request, encode, error_response, ok_response
from repro.service.server import ServiceServer


class ScriptedServer:
    """Answers request frames from a scripted behaviour queue."""

    def __init__(self, behaviors):
        self.behaviors = deque(behaviors)
        self._sock = socket.create_server(("127.0.0.1", 0))
        self.port = self._sock.getsockname()[1]
        self.served = 0
        self._accept_thread = threading.Thread(target=self._accept, daemon=True)
        self._accept_thread.start()

    def _accept(self):
        while True:
            try:
                conn, _ = self._sock.accept()
            except OSError:
                return
            threading.Thread(target=self._serve, args=(conn,), daemon=True).start()

    def _serve(self, conn):
        reader = conn.makefile("rb")
        with conn:
            for raw in reader:
                request = decode_request(raw)
                behavior = self.behaviors.popleft() if self.behaviors else "ok"
                self.served += 1
                if behavior == "drop":
                    return  # close without replying
                if isinstance(behavior, tuple) and behavior[0] == "sleep":
                    time.sleep(behavior[1])
                    behavior = "ok"
                if behavior == "overloaded":
                    response = error_response(
                        request["id"], "overloaded", "scripted rejection"
                    )
                else:
                    response = ok_response(request["id"], {"pong": True})
                try:
                    conn.sendall(encode(response))
                except OSError:
                    return

    def close(self):
        self._sock.close()


@pytest.fixture
def scripted():
    servers = []

    def make(behaviors) -> ScriptedServer:
        server = ScriptedServer(behaviors)
        servers.append(server)
        return server

    yield make
    for server in servers:
        server.close()


def _fast_retry(**overrides) -> RetryPolicy:
    knobs = {"max_attempts": 4, "base_delay_s": 0.001, "max_delay_s": 0.01}
    knobs.update(overrides)
    return RetryPolicy(**knobs)


def test_retries_overloaded_then_succeeds(scripted):
    server = scripted(["overloaded", "overloaded", "ok"])
    counters.reset("service_client_retries")
    with ServiceClient(tcp=("127.0.0.1", server.port), retry=_fast_retry()) as client:
        assert client.ping() is True
    assert server.served == 3
    assert counters.get("service_client_retries") == 2


def test_no_retry_without_policy(scripted):
    server = scripted(["overloaded", "ok"])
    with ServiceClient(tcp=("127.0.0.1", server.port)) as client:
        with pytest.raises(ServiceClientError) as exc_info:
            client.result("ping")
        assert exc_info.value.code == "overloaded"
    assert server.served == 1


def test_retries_exhausted_returns_last_error(scripted):
    server = scripted(["overloaded"] * 10)
    with ServiceClient(
        tcp=("127.0.0.1", server.port), retry=_fast_retry(max_attempts=3)
    ) as client:
        response = client.call("ping")
        assert not response["ok"]
        assert response["error"]["code"] == "overloaded"
    assert server.served == 3


def test_non_retryable_error_is_not_retried(scripted):
    server = scripted(["overloaded", "ok"])
    policy = _fast_retry(retry_codes=frozenset())
    with ServiceClient(tcp=("127.0.0.1", server.port), retry=policy) as client:
        with pytest.raises(ServiceClientError):
            client.result("ping")
    assert server.served == 1


def test_reconnects_after_dropped_connection(scripted):
    server = scripted(["drop", "ok"])
    counters.reset()
    with ServiceClient(tcp=("127.0.0.1", server.port), retry=_fast_retry()) as client:
        assert client.ping() is True
    assert counters.get("service_client_retries") >= 1
    assert counters.get("service_client_reconnects") >= 1


def test_transport_failure_without_policy_raises(scripted):
    server = scripted(["drop"])
    with ServiceClient(tcp=("127.0.0.1", server.port)) as client:
        with pytest.raises(ServiceUnavailable):
            client.call("ping")
        # The broken transport is replaced lazily: the next call dials anew.
        assert client.ping() is True


def test_kill_connection_then_retry_path_recovers():
    with ServiceServer(("tcp", "127.0.0.1", 0), jobs=1, queue_size=8) as server:
        _kind, host, port = server.address
        counters.reset()
        with ServiceClient(
            tcp=(host, port), timeout=30.0, retry=_fast_retry()
        ) as client:
            assert client.ping() is True
            client.kill_connection()
            assert client.ping() is True  # reconnected transparently
        assert counters.get("service_client_reconnects") >= 1


def test_per_call_timeout_override(scripted):
    server = scripted([("sleep", 0.5), "ok"])
    with ServiceClient(
        tcp=("127.0.0.1", server.port), timeout=30.0
    ) as client:
        with pytest.raises(ServiceUnavailable):
            client.call("ping", timeout=0.05)
        # The connection-default timeout is restored for later calls.
        assert client.ping() is True


def test_close_is_idempotent_and_final(scripted):
    server = scripted(["ok"])
    client = ServiceClient(tcp=("127.0.0.1", server.port))
    assert client.ping() is True
    client.close()
    client.close()  # second close is a no-op
    with pytest.raises(ServiceUnavailable):
        client.call("ping")
    with pytest.raises(ServiceUnavailable):
        client.reconnect()


def test_constructor_rejects_ambiguous_address():
    with pytest.raises(ValueError):
        ServiceClient()
    with pytest.raises(ValueError):
        ServiceClient(socket_path="/tmp/x.sock", tcp=("h", 1))


def test_retry_policy_validation_and_backoff_shape():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(base_delay_s=-1.0)
    policy = RetryPolicy(base_delay_s=0.1, max_delay_s=0.5, jitter=0.0)
    rng = random.Random(0)
    delays = [policy.delay_s(attempt, rng) for attempt in range(5)]
    assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]  # doubling, capped
    jittered = RetryPolicy(base_delay_s=0.1, max_delay_s=0.5, jitter=0.5)
    for attempt in range(5):
        delay = jittered.delay_s(attempt, rng)
        base = min(0.5, 0.1 * 2 ** attempt)
        assert base <= delay <= base * 1.5
