"""Engine semantics: caching, dedup, overload, timeouts, crash recovery.

These tests spawn real worker processes; they use the diagnostics
``sleep`` method to hold a worker deterministically where needed.
"""

from __future__ import annotations

import os
import signal
import time

import pytest

from repro.perf import counters
from repro.service.cache import ResultCache
from repro.service.engine import Engine


def _wait_for_running_pid(engine, timeout=10.0):
    """Poll engine stats until some job reports a started worker pid."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        for job in engine.stats()["jobs"]:
            if job["started"] and job["pid"]:
                return job["pid"]
        time.sleep(0.02)
    raise AssertionError("no job reported a worker pid in time")


@pytest.fixture
def engine():
    eng = Engine(jobs=1, queue_size=8)
    yield eng
    eng.shutdown(drain_timeout=5.0)


def test_submit_runs_a_job_end_to_end(engine):
    future, info = engine.submit("synth", {"expr": "a & b"})
    payload = future.result(timeout=60)
    assert payload["ok"] is True
    assert payload["result"]["design_name"] == "f"
    assert info == {"cached": False, "deduped": False}


def test_cache_hit_short_circuits_the_pool():
    counters.reset()
    with Engine(jobs=1, queue_size=8, cache=ResultCache(capacity=8)) as engine:
        cold, info_cold = engine.submit("synth", {"expr": "a | b"})
        first = cold.result(timeout=60)
        warm, info_warm = engine.submit("synth", {"expr": "a|b"})  # same canonical form
        second = warm.result(timeout=5)
        assert info_cold["cached"] is False and info_warm["cached"] is True
        assert first == second
        assert counters.get("service_cache_hits") == 1
        engine.shutdown(drain_timeout=5.0)


def test_identical_concurrent_requests_collapse_to_one_synthesis():
    counters.reset()
    with Engine(jobs=1, queue_size=8, cache=ResultCache(capacity=8)) as engine:
        # Occupy the single worker so the synth requests stay in flight.
        blocker, _ = engine.submit("sleep", {"seconds": 1.0})
        f1, i1 = engine.submit("synth", {"expr": "a & (b | c)"})
        f2, i2 = engine.submit("synth", {"expr": "a & (b | c)"})
        assert i1["deduped"] is False
        assert i2["deduped"] is True
        assert f2 is f1  # literally the same future: one job, two waiters
        payload = f1.result(timeout=60)
        assert payload["ok"] is True
        assert blocker.result(timeout=30)["ok"] is True
        assert counters.get("service_dedup_hits") == 1
        # Exactly one synthesis ran: one store, no hit (dedup is not a cache hit).
        assert counters.get("service_cache_stores") == 1
        engine.shutdown(drain_timeout=5.0)


def test_full_queue_rejects_with_overloaded():
    counters.reset()
    with Engine(jobs=1, queue_size=1) as engine:
        blocker, _ = engine.submit("sleep", {"seconds": 1.0})
        rejected, _ = engine.submit("sleep", {"seconds": 0.0})
        payload = rejected.result(timeout=5)
        assert payload["ok"] is False
        assert payload["error"]["code"] == "overloaded"
        assert counters.get("service_jobs_rejected") == 1
        assert blocker.result(timeout=30)["ok"] is True
        engine.shutdown(drain_timeout=5.0)


def test_job_timeout_kills_the_worker_and_reports_timeout():
    counters.reset()
    with Engine(jobs=1, queue_size=8, job_timeout=0.5) as engine:
        future, _ = engine.submit("sleep", {"seconds": 60})
        payload = future.result(timeout=30)
        assert payload["ok"] is False
        assert payload["error"]["code"] == "timeout"
        assert counters.get("service_job_timeouts") == 1
        # The pool was rebuilt: the engine keeps serving.
        after, _ = engine.submit("sleep", {"seconds": 0.0})
        assert after.result(timeout=30)["ok"] is True
        engine.shutdown(drain_timeout=5.0)


def test_killed_worker_fails_exactly_that_job_and_engine_recovers():
    counters.reset()
    with Engine(jobs=1, queue_size=8) as engine:
        victim, _ = engine.submit("sleep", {"seconds": 60})
        queued, _ = engine.submit("sleep", {"seconds": 0.0})
        pid = _wait_for_running_pid(engine)
        os.kill(pid, signal.SIGKILL)
        payload = victim.result(timeout=30)
        assert payload["ok"] is False
        assert payload["error"]["code"] == "worker_crash"
        assert str(pid) in payload["error"]["message"]
        # The innocent queued job was resubmitted to the fresh pool and ran.
        assert queued.result(timeout=30)["ok"] is True
        assert counters.get("service_worker_crashes") == 1
        assert counters.get("service_job_retries") >= 1
        engine.shutdown(drain_timeout=5.0)


def test_drain_finishes_inflight_work_then_refuses_new_jobs(engine):
    future, _ = engine.submit("sleep", {"seconds": 0.3})
    assert engine.drain(timeout=10.0) is True
    assert future.result(timeout=1)["ok"] is True
    late, _ = engine.submit("sleep", {"seconds": 0.0})
    payload = late.result(timeout=1)
    assert payload["ok"] is False
    assert payload["error"]["code"] == "draining"


def test_uncacheable_garbage_still_gets_a_structured_error(engine):
    # The key derivation fails (unparseable expr) so no cache key exists;
    # the worker still answers with a structured error payload.
    future, info = engine.submit("synth", {"expr": "((("})
    payload = future.result(timeout=30)
    assert payload["ok"] is False
    assert payload["error"]["code"] == "bad_request"
    assert info == {"cached": False, "deduped": False}


def test_stats_reports_workers_queue_and_counters(engine):
    stats = engine.stats()
    assert stats["workers"] == 1
    assert stats["queue_size"] == 8
    assert stats["active_jobs"] == 0
    assert isinstance(stats["counters"], dict)
