"""Request execution layer: structured payloads, never a raised traceback."""

from __future__ import annotations

import json

from repro.core import Compact
from repro.crossbar import design_to_json, fault_map_to_json, random_fault_map
from repro.io import write_blif
from repro.service import jobs


def test_synth_expr_returns_full_payload():
    payload = jobs.execute("synth", {"expr": "(a & b) | c"})
    assert payload["ok"] is True
    result = payload["result"]
    assert result["design_name"] == "f"
    assert result["inputs"] == ["a", "b", "c"]
    assert result["validation"]["ok"] is True
    assert result["metrics"]["rows"] >= 1 and result["metrics"]["cols"] >= 1
    # The payload must survive the wire (and the cache) unchanged.
    assert json.loads(json.dumps(payload)) == payload


def test_synth_matches_direct_pipeline_byte_for_byte(c17_netlist):
    from repro.io import read_blif

    text = write_blif(c17_netlist)
    payload = jobs.execute(
        "synth", {"circuit": {"format": "blif", "text": text}, "validate": False}
    )
    # Parse the same text the service saw: synthesis is deterministic in
    # the circuit text, which is what makes client output byte-identical
    # to single-shot CLI output.
    direct = Compact().synthesize_netlist(read_blif(text, source="<request>"))
    assert payload["result"]["design_json"] == design_to_json(direct.design, indent=2)


def test_bad_expression_is_a_bad_request():
    payload = jobs.execute("synth", {"expr": "a &&& b"})
    assert payload["ok"] is False
    assert payload["error"]["code"] == "bad_request"


def test_unparseable_circuit_is_a_parse_error():
    payload = jobs.execute(
        "synth", {"circuit": {"format": "blif", "text": "complete garbage\n"}}
    )
    assert payload["ok"] is False
    assert payload["error"]["code"] == "parse_error"
    assert "Traceback" not in payload["error"]["message"]


def test_unknown_method_and_format_are_bad_requests():
    assert jobs.execute("frobnicate", {})["error"]["code"] == "bad_request"
    bad_format = jobs.execute(
        "synth", {"circuit": {"format": "cobol", "text": "x"}}
    )
    assert bad_format["error"]["code"] == "bad_request"


def test_map_remaps_onto_faulty_array(c17_netlist):
    text = write_blif(c17_netlist)
    design = Compact().synthesize_netlist(c17_netlist).design
    fault_map = random_fault_map(
        design.num_rows + 2, design.num_cols + 2, p_stuck_off=0.03, seed=1
    )
    payload = jobs.execute("map", {
        "circuit": {"format": "blif", "text": text},
        "design_json": design_to_json(design),
        "fault_map": fault_map_to_json(fault_map),
    })
    assert payload["ok"] is True, payload
    result = payload["result"]
    assert result["validation"]["ok"] is True
    assert result["array"]["rows"] == design.num_rows + 2


def test_map_without_a_circuit_is_a_bad_request():
    payload = jobs.execute("map", {"expr": "a & b", "design_json": "{}"})
    assert payload["error"]["code"] == "bad_request"


def test_validate_mismatched_inputs_is_validation_failed(c17_netlist):
    from repro.expr import parse

    design = Compact().synthesize_expr(parse("a & b"), name="tiny").design
    payload = jobs.execute("validate", {
        "circuit": {"format": "blif", "text": write_blif(c17_netlist)},
        "design_json": design_to_json(design),
    })
    assert payload["ok"] is False
    assert payload["error"]["code"] == "validation_failed"


def test_sleep_bounds_are_enforced():
    assert jobs.execute("sleep", {"seconds": 0.0})["ok"] is True
    assert jobs.execute("sleep", {"seconds": -1})["error"]["code"] == "bad_request"
    assert jobs.execute("sleep", {"seconds": 1e9})["error"]["code"] == "bad_request"


def test_synth_layers_knob_produces_layered_result():
    payload = jobs.execute("synth", {"expr": "(a & b) | (c & d)", "layers": 2})
    assert payload["ok"] is True
    result = payload["result"]
    assert result["metrics"]["layers"] == 2
    assert result["validation"]["ok"] is True
    planar = jobs.execute("synth", {"expr": "(a & b) | (c & d)"})
    assert planar["result"]["metrics"]["layers"] == 1
    assert (
        result["metrics"]["semiperimeter"]
        <= planar["result"]["metrics"]["semiperimeter"]
    )


def test_synth_layers_must_be_positive():
    payload = jobs.execute("synth", {"expr": "a & b", "layers": 0})
    assert payload["error"]["code"] == "bad_request"
