"""Fleet load generator: deterministic mixes, tiny end-to-end runs,
multi-node fleets, front comparison, and the CLI gates.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.service.loadgen import MIXES, build_mix, compare_fronts, run_load


def test_build_mix_is_deterministic_and_seed_sensitive():
    a = build_mix("cached", connections=4, requests_per_conn=10, seed=5)
    b = build_mix("cached", connections=4, requests_per_conn=10, seed=5)
    assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)
    c = build_mix("cached", connections=4, requests_per_conn=10, seed=6)
    assert json.dumps(c, sort_keys=True) != json.dumps(a, sort_keys=True)
    assert len(a["schedules"]) == 4
    assert all(len(s) == 10 for s in a["schedules"])
    assert a["warmup"]  # the cached mix warms its whole pool


def test_build_mix_rejects_unknown_mixes_and_bad_sizes():
    with pytest.raises(ValueError):
        build_mix("nonsense", 4, 10)
    with pytest.raises(ValueError):
        build_mix("cached", 0, 10)
    assert set(MIXES) == {"cached", "synth-heavy", "validate-heavy", "fault-storm"}


def test_cached_mix_runs_clean_and_fully_cached():
    report = run_load(mix="cached", connections=4, requests_per_conn=6,
                      pipeline=2, front="async", jobs=1)
    assert report["requests"] == 24
    assert report["errors"] == 0 and report["error_rate"] == 0.0
    assert report["hit_rate"] == 1.0  # warmed pool: pure cache traffic
    assert report["rps"] > 0
    assert report["latency_ms"]["p50"] <= report["latency_ms"]["p99"]
    assert report["counters"].get("service_jobs_submitted") == 24


def test_fault_storm_mix_exercises_fault_map_keys():
    report = run_load(mix="fault-storm", connections=3, requests_per_conn=4,
                      pipeline=2, front="async", jobs=1)
    assert report["errors"] == 0
    # The storm is mostly distinct maps: some misses must reach the
    # engine (if the fault map were missing from the cache key, every
    # request would collide onto one entry and hit).
    assert 0.0 < report["hit_rate"] < 1.0
    assert report["counters"].get("service_jobs_completed", 0) >= 1


def test_multi_node_fleet_shares_one_result_space():
    report = run_load(mix="cached", connections=4, requests_per_conn=5,
                      pipeline=2, node_count=2, front="async", jobs=1)
    assert report["nodes"] == 2
    assert report["errors"] == 0
    assert report["hit_rate"] == 1.0


def test_compare_fronts_reports_both_and_the_speedup():
    block = compare_fronts(mix="cached", connections=4, requests_per_conn=5,
                           pipeline=2, jobs=1)
    assert block["threaded"]["front"] == "threaded"
    assert block["async"]["front"] == "async"
    assert block["threaded"]["errors"] == 0
    assert block["async"]["errors"] == 0
    assert block["speedup_rps"] > 0


def test_cli_load_generator_gates(capsys):
    args = ["bench", "service", "--load", "cached", "--connections", "3",
            "--requests-per-conn", "4", "--pipeline", "2", "--jobs", "1"]
    assert main(args + ["--rps-floor", "1", "--max-error-rate", "0"]) == 0
    out = capsys.readouterr().out
    assert "cached mix" in out
    # An absurd floor turns the same healthy run into a failure.
    assert main(args + ["--rps-floor", "1e12"]) == 1
    assert "below the" in capsys.readouterr().err


def test_cli_load_generator_merges_into_perf_json(tmp_path):
    baseline = {
        "schema": "repro-bench-perf/1",
        "suite_tier": "fast", "gamma": 0.5, "jobs": 1,
        "totals": {"circuits": 0, "wall_time_s": 0.0},
        "circuits": [],
    }
    path = tmp_path / "BENCH.json"
    path.write_text(json.dumps(baseline))
    assert main(["bench", "service", "--load", "cached", "--connections", "2",
                 "--requests-per-conn", "3", "--pipeline", "2", "--jobs", "1",
                 "--perf-json", str(path)]) == 0
    merged = json.loads(path.read_text())
    block = merged["service_load"]
    assert block["mix"] == "cached"
    assert block["requests"] == 6
    assert block["ok"] + block["errors"] == block["requests"]
