"""Wire-protocol frames: round trips, versioning, malformed input."""

from __future__ import annotations

import json

import pytest

from repro.service.protocol import (
    ERROR_CODES,
    PROTOCOL_VERSION,
    ProtocolError,
    decode_request,
    decode_response,
    encode,
    error_response,
    make_request,
    ok_response,
)


def test_request_round_trip():
    frame = make_request("synth", {"expr": "a & b"}, request_id=7)
    assert decode_request(encode(frame)) == frame
    assert frame["v"] == PROTOCOL_VERSION
    assert frame["id"] == 7


def test_ok_response_round_trip():
    frame = ok_response("x1", {"pong": True}, cached=True, elapsed_s=0.125)
    decoded = decode_response(encode(frame))
    assert decoded == frame
    assert decoded["cached"] is True
    assert decoded["deduped"] is False


def test_error_response_round_trip_and_code_sanitising():
    frame = error_response(3, "timeout", "budget expired", {"pid": 42})
    decoded = decode_response(encode(frame))
    assert decoded["error"] == {
        "code": "timeout", "message": "budget expired", "details": {"pid": 42},
    }
    # Unknown codes are coerced so the wire only ever carries known codes.
    assert error_response(1, "no-such-code", "boom")["error"]["code"] == "internal"
    assert all(code in ERROR_CODES for code in ("parse_error", "worker_crash"))


def test_make_request_rejects_unknown_method():
    with pytest.raises(ProtocolError):
        make_request("frobnicate", {})


@pytest.mark.parametrize("line", [
    b"not json at all",
    b"[1, 2, 3]",
    b'"just a string"',
])
def test_decode_rejects_non_object_frames(line):
    with pytest.raises(ProtocolError):
        decode_request(line)


def test_decode_rejects_wrong_version():
    frame = make_request("ping")
    frame["v"] = PROTOCOL_VERSION + 1
    with pytest.raises(ProtocolError, match="version"):
        decode_request(json.dumps(frame))


def test_decode_rejects_bad_request_shapes():
    base = make_request("ping")
    bad_method = dict(base, method="nope")
    with pytest.raises(ProtocolError, match="method"):
        decode_request(json.dumps(bad_method))
    bad_params = dict(base, params=[1, 2])
    with pytest.raises(ProtocolError, match="params"):
        decode_request(json.dumps(bad_params))
    bad_id = dict(base, id=["x"])
    with pytest.raises(ProtocolError, match="id"):
        decode_request(json.dumps(bad_id))


def test_decode_rejects_bad_response_shapes():
    with pytest.raises(ProtocolError, match="'ok'"):
        decode_response(json.dumps({"v": PROTOCOL_VERSION, "id": 1}))
    with pytest.raises(ProtocolError, match="result"):
        decode_response(json.dumps({"v": PROTOCOL_VERSION, "id": 1, "ok": True}))
    with pytest.raises(ProtocolError, match="error"):
        decode_response(json.dumps({"v": PROTOCOL_VERSION, "id": 1, "ok": False}))
    with pytest.raises(ProtocolError, match="error"):
        decode_response(json.dumps(
            {"v": PROTOCOL_VERSION, "id": 1, "ok": False, "error": {"code": "x"}}
        ))


def test_decode_rejects_invalid_utf8():
    with pytest.raises(ProtocolError, match="UTF-8"):
        decode_request(b'{"v": 1, "\xff\xfe": 1}')
