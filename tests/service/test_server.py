"""End-to-end server tests over real sockets, including the acceptance
criteria: trace-replay cache hits, concurrent dedup, and a worker killed
mid-job failing exactly one client while the server keeps serving.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import threading
import time

import pytest

from repro.perf import counters
from repro.service import ServiceClient, ServiceClientError
from repro.service.bench import build_trace, run_service_bench
from repro.service.server import ServiceServer, format_address, parse_address


@pytest.fixture
def server():
    srv = ServiceServer(("tcp", "127.0.0.1", 0), jobs=2, queue_size=16)
    srv.start()
    yield srv
    srv.stop()


def _client(server) -> ServiceClient:
    _kind, host, port = server.address
    return ServiceClient(tcp=(host, port), timeout=120.0)


def test_parse_address():
    assert parse_address("/tmp/x.sock", None) == ("unix", "/tmp/x.sock")
    assert parse_address(None, "127.0.0.1:8111") == ("tcp", "127.0.0.1", 8111)
    for bad in [(None, None), ("/tmp/x.sock", "h:1")]:
        with pytest.raises(ValueError):
            parse_address(*bad)
    with pytest.raises(ValueError):
        parse_address(None, "no-port")
    with pytest.raises(ValueError):
        parse_address(None, "host:not-a-number")


def test_parse_address_accepts_bracketed_ipv6():
    assert parse_address(None, "[::1]:8080") == ("tcp", "::1", 8080)
    assert parse_address(None, "[fe80::1%eth0]:9000") == ("tcp", "fe80::1%eth0", 9000)
    # Mismatched or stray brackets are rejected, not silently kept.
    for bad in ("[::1:8080", "::1]:8080", "[]:8080"):
        with pytest.raises(ValueError):
            parse_address(None, bad)


def test_format_address_round_trips():
    for tcp in ("127.0.0.1:8111", "[::1]:8080"):
        assert format_address(parse_address(None, tcp)) == tcp
    assert format_address(("unix", "/tmp/x.sock")) == "/tmp/x.sock"


def test_client_strips_ipv6_brackets_and_serves_over_ipv6():
    if not socket.has_ipv6:  # pragma: no cover - IPv6-less CI runner
        pytest.skip("no IPv6 support")
    try:
        server = ServiceServer(parse_address(None, "[::1]:0"), jobs=1)
        server.start()
    except OSError:  # pragma: no cover - IPv6 disabled at runtime
        pytest.skip("cannot bind ::1")
    try:
        _kind, host, port = server.address
        assert host == "::1"
        # Bracketed host, as the CLI would hand it over.
        with ServiceClient(tcp=(f"[{host}]", port)) as client:
            assert client.ping() is True
    finally:
        server.stop()


def test_ping_stats_and_synth_over_tcp(server):
    with _client(server) as client:
        assert client.ping() is True
        stats = client.stats()
        assert stats["server"]["transport"] == "tcp"
        assert stats["engine"]["workers"] == 2
        result = client.result("synth", {"expr": "(a & b) | ~c"})
        assert result["validation"]["ok"] is True


def test_unix_socket_transport(tmp_path):
    path = str(tmp_path / "svc.sock")
    with ServiceServer(("unix", path), jobs=1) as server:
        assert server.describe_address() == path
        with ServiceClient(socket_path=path) as client:
            assert client.ping() is True
    assert not os.path.exists(path)  # socket file removed on shutdown


def test_cached_response_is_identical_and_flagged(server):
    with _client(server) as client:
        cold = client.call("synth", {"expr": "a ^ b"})
        warm = client.call("synth", {"expr": "a^b"})  # same canonical form
        assert cold["ok"] and warm["ok"]
        assert cold["cached"] is False and warm["cached"] is True
        assert warm["result"] == cold["result"]


def test_structured_errors_cross_the_wire(server):
    with _client(server) as client:
        with pytest.raises(ServiceClientError) as excinfo:
            client.result("synth", {"expr": "(("})
        assert excinfo.value.code == "bad_request"
        assert "Traceback" not in excinfo.value.message


def test_malformed_frames_get_protocol_errors_and_connection_survives(server):
    _kind, host, port = server.address
    with socket.create_connection((host, port), timeout=30) as sock:
        reader = sock.makefile("rb")
        for line in (b"this is not json\n", b'{"v": 99, "id": 1, "method": "ping", "params": {}}\n'):
            sock.sendall(line)
            frame = json.loads(reader.readline())
            assert frame["ok"] is False
            assert frame["error"]["code"] == "protocol_error"
        # The connection is still usable after protocol errors.
        sock.sendall(b'{"v": 1, "id": 2, "method": "ping", "params": {}}\n')
        assert json.loads(reader.readline())["ok"] is True


def test_trace_replay_cache_hits_match_repeat_rate():
    """Acceptance: 200 requests at 50% repeats -> hits >= repeat count."""
    payload = run_service_bench(requests=200, repeat_rate=0.5, clients=1, jobs=2)
    assert payload["requests"] == 200
    assert payload["failed"] == 0
    assert payload["repeats"] == 100
    assert payload["cache_hits"] >= payload["repeats"]
    assert payload["hit_rate"] >= 0.5
    assert payload["latency_s"]["p50"] <= payload["latency_s"]["p99"]


def test_trace_replay_with_concurrent_clients_never_recomputes_repeats():
    payload = run_service_bench(requests=60, repeat_rate=0.5, clients=4, jobs=2)
    assert payload["failed"] == 0
    # A repeat is served by the cache or rides an in-flight twin; either
    # way it never triggers a second synthesis of the same request.
    assert payload["cache_hits"] + payload["deduped"] >= payload["repeats"]


def test_trace_is_deterministic_and_repeats_follow_first_use():
    t1, t2 = build_trace(40, 0.5, seed=7), build_trace(40, 0.5, seed=7)
    assert t1 == t2
    assert build_trace(40, 0.5, seed=8) != t1
    seen = set()
    repeats = 0
    for entry in t1:
        blob = json.dumps(entry, sort_keys=True)
        repeats += blob in seen
        seen.add(blob)
    assert repeats == 20 and len(seen) == 20


def test_killed_worker_fails_exactly_one_client_and_server_keeps_serving():
    """Acceptance: SIGKILL a worker mid-job; only its client sees the error."""
    counters.reset()
    with ServiceServer(("tcp", "127.0.0.1", 0), jobs=1, queue_size=16) as server:
        _kind, host, port = server.address
        victim_response: dict = {}

        def _victim():
            with ServiceClient(tcp=(host, port), timeout=120.0) as client:
                victim_response.update(client.call("sleep", {"seconds": 60}))

        thread = threading.Thread(target=_victim, daemon=True)
        thread.start()

        with ServiceClient(tcp=(host, port), timeout=120.0) as observer:
            pid = None
            deadline = time.monotonic() + 10.0
            while pid is None and time.monotonic() < deadline:
                jobs = observer.stats()["engine"]["jobs"]
                started = [j["pid"] for j in jobs if j["started"] and j["pid"]]
                pid = started[0] if started else None
                if pid is None:
                    time.sleep(0.02)
            assert pid is not None, "sleep job never reported a worker pid"
            os.kill(pid, signal.SIGKILL)

            thread.join(timeout=30)
            assert not thread.is_alive()
            assert victim_response["ok"] is False
            assert victim_response["error"]["code"] == "worker_crash"

            # The server is still up and serving real work for others.
            result = observer.result("synth", {"expr": "a & b & c"})
            assert result["validation"]["ok"] is True
    assert counters.get("service_worker_crashes") == 1
