"""Tests for the command-line interface (invoked in-process)."""

import json

import pytest

from repro.cli import build_parser, load_circuit, main
from repro.circuits import c17
from repro.io import write_blif, write_pla, write_verilog


@pytest.fixture
def c17_verilog(tmp_path):
    path = tmp_path / "c17.v"
    path.write_text(write_verilog(c17()))
    return path


class TestLoadCircuit:
    def test_by_extension(self, tmp_path):
        for suffix, writer in ((".v", write_verilog), (".blif", write_blif), (".pla", write_pla)):
            p = tmp_path / f"c{suffix}"
            p.write_text(writer(c17()))
            nl = load_circuit(str(p))
            assert len(nl.inputs) == 5

    def test_forced_format(self, tmp_path):
        p = tmp_path / "mystery.txt"
        p.write_text(write_blif(c17()))
        nl = load_circuit(str(p), fmt="blif")
        assert len(nl.outputs) == 2

    def test_unknown_extension_exits(self, tmp_path):
        p = tmp_path / "c.xyz"
        p.write_text("junk")
        with pytest.raises(SystemExit):
            load_circuit(str(p))


class TestSynth:
    def test_file_flow(self, c17_verilog, capsys):
        rc = main(["synth", str(c17_verilog)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "validation : OK" in out
        assert "semiperim." in out

    def test_expr_flow(self, capsys):
        rc = main(["synth", "--expr", "(a & b) | c", "--render"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "<- Vin" in out

    def test_json_artifact(self, c17_verilog, tmp_path, capsys):
        artifact = tmp_path / "design.json"
        rc = main(["synth", str(c17_verilog), "--json", str(artifact)])
        assert rc == 0
        payload = json.loads(artifact.read_text())
        assert payload["format"] == "repro.crossbar/1"

    def test_spice_artifact(self, c17_verilog, tmp_path):
        deck = tmp_path / "design.cir"
        rc = main(["synth", str(c17_verilog), "--spice", str(deck)])
        assert rc == 0
        assert deck.read_text().rstrip().endswith(".end")

    def test_gamma_and_method_flags(self, c17_verilog, capsys):
        rc = main([
            "synth", str(c17_verilog),
            "--gamma", "1.0", "--method", "oct", "--time-limit", "20",
        ])
        assert rc == 0

    def test_heuristic_no_validate(self, c17_verilog, capsys):
        rc = main(["synth", str(c17_verilog), "--method", "heuristic", "--no-validate"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "validation" not in out


class TestReportAndValidate:
    def test_report(self, c17_verilog, capsys):
        rc = main(["report", str(c17_verilog)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "SBDD" in out and "gates" in out

    def test_validate_round_trip(self, c17_verilog, tmp_path, capsys):
        artifact = tmp_path / "d.json"
        main(["synth", str(c17_verilog), "--json", str(artifact)])
        rc = main(["validate", str(artifact), "--circuit", str(c17_verilog)])
        out = capsys.readouterr().out
        assert rc == 0 and "OK" in out

    def test_validate_detects_wrong_circuit(self, c17_verilog, tmp_path, capsys):
        from repro.circuits import decoder

        artifact = tmp_path / "d.json"
        main(["synth", str(c17_verilog), "--json", str(artifact)])
        other = tmp_path / "dec.v"
        other.write_text(write_verilog(decoder(3, name="dec3")))
        # Different inputs: evaluation raises or mismatches; accept both
        # a nonzero exit and an exception as detection.
        try:
            rc = main(["validate", str(artifact), "--circuit", str(other)])
        except KeyError:
            rc = 1
        assert rc == 1


class TestBenchCommand:
    def test_table1(self, capsys):
        rc = main(["bench", "table1"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Table I" in out

    def test_perf_harness_writes_json(self, tmp_path, capsys):
        from repro.perf import validate_bench_payload

        out_json = tmp_path / "bench.json"
        rc = main([
            "bench", "perf", "--circuits", "c17", "--jobs", "1",
            "--time-limit", "10", "--perf-json", str(out_json),
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Perf baseline" in out and "c17" in out
        payload = json.loads(out_json.read_text())
        validate_bench_payload(payload)
        assert [r["circuit"] for r in payload["circuits"]] == ["c17"]

    def test_perf_is_default_experiment(self):
        args = build_parser().parse_args(["bench", "--circuits", "c17"])
        assert args.experiment == "perf"

    def test_perf_rejects_unknown_circuit(self):
        with pytest.raises(ValueError, match="unknown suite circuits"):
            main(["bench", "perf", "--circuits", "definitely_not_a_circuit"])


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "fig99"])


class TestMalformedInputExitCodes:
    """Malformed files exit with code 2 and a one-line message (no traceback)."""

    def run_expect_2(self, argv, capsys):
        with pytest.raises(SystemExit) as exc_info:
            main(argv)
        assert exc_info.value.code == 2
        err = capsys.readouterr().err
        assert err.startswith("repro: error:")
        assert len(err.strip().splitlines()) == 1
        return err

    def test_malformed_verilog(self, tmp_path, capsys):
        p = tmp_path / "bad.v"
        p.write_text("module m (a, b);\n  input a;\n  output b;\n  nand g0 ();\nendmodule\n")
        err = self.run_expect_2(["synth", str(p)], capsys)
        assert "bad.v:4:" in err

    def test_malformed_blif(self, tmp_path, capsys):
        p = tmp_path / "bad.blif"
        p.write_text(".model m\n.inputs a\n.outputs z\n.latch a z\n.end\n")
        err = self.run_expect_2(["report", str(p)], capsys)
        assert "bad.blif:4:" in err and ".latch" in err

    def test_malformed_pla(self, tmp_path, capsys):
        p = tmp_path / "bad.pla"
        p.write_text(".i 2\n.o 1\n11 1\n1- x 1\n.e\n")
        err = self.run_expect_2(["report", str(p)], capsys)
        assert "bad.pla:4:" in err

    def test_missing_file(self, tmp_path, capsys):
        err = self.run_expect_2(["report", str(tmp_path / "absent.v")], capsys)
        assert "cannot read" in err

    def test_invalid_design_json(self, tmp_path, c17_verilog, capsys):
        p = tmp_path / "notdesign.json"
        p.write_text("{}")
        err = self.run_expect_2(
            ["validate", str(p), "--circuit", str(c17_verilog)], capsys
        )
        assert "not a valid design JSON" in err


class TestMapCommand:
    @pytest.fixture
    def c17_artifacts(self, c17_verilog, tmp_path):
        design_json = tmp_path / "c17.json"
        main(["synth", str(c17_verilog), "--json", str(design_json)])
        return c17_verilog, design_json

    def test_faults_generator_and_map_roundtrip(self, c17_artifacts, tmp_path, capsys):
        verilog, design_json = c17_artifacts
        payload = json.loads(design_json.read_text())
        rows = payload["rows"] + 2
        cols = payload["cols"] + 2
        faults_json = tmp_path / "faults.json"
        rc = main([
            "faults", str(rows), str(cols),
            "--p-stuck-off", "0.03", "--seed", "5", "--out", str(faults_json),
        ])
        assert rc == 0
        capsys.readouterr()

        out_json = tmp_path / "remapped.json"
        rc = main([
            "map", str(design_json), "--circuit", str(verilog),
            "--fault-map", str(faults_json), "--json", str(out_json),
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "validation : OK" in out
        assert "stage      :" in out
        remapped = json.loads(out_json.read_text())
        assert remapped["format"] == payload["format"]

    def test_map_failure_exits_1_with_diagnosis(self, c17_artifacts, tmp_path, capsys):
        from repro.crossbar import FaultMap, fault_map_to_json
        from repro.crossbar.faults import Fault

        verilog, design_json = c17_artifacts
        payload = json.loads(design_json.read_text())
        rows, cols = payload["rows"], payload["cols"]
        faults = tuple(
            Fault(r, c, "stuck_off") for r in range(rows) for c in range(cols)
        )
        dead = tmp_path / "dead.json"
        dead.write_text(fault_map_to_json(FaultMap(rows, cols, faults)))
        rc = main([
            "map", str(design_json), "--circuit", str(verilog),
            "--fault-map", str(dead),
        ])
        err = capsys.readouterr().err
        assert rc == 1
        assert "remap failed" in err

    def test_map_rejects_garbage_fault_map(self, c17_artifacts, tmp_path, capsys):
        verilog, design_json = c17_artifacts
        garbage = tmp_path / "g.json"
        garbage.write_text("not json at all")
        with pytest.raises(SystemExit) as exc_info:
            main([
                "map", str(design_json), "--circuit", str(verilog),
                "--fault-map", str(garbage),
            ])
        assert exc_info.value.code == 2

    def test_bench_yield_smoke(self, capsys):
        rc = main([
            "bench", "yield", "--circuits", "c17", "--trials", "2",
            "--p-stuck-off", "0.02", "--seed", "0",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "naive" in out and "remapped" in out and "c17" in out


class TestSynth3D:
    def test_layers_flag(self, c17_verilog, capsys):
        rc = main(["synth", str(c17_verilog), "--layers", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "2 layers" in out
        assert "vias" in out

    def test_layers_json_artifact_round_trips(self, c17_verilog, tmp_path):
        from repro.crossbar import CrossbarDesign3D, design_from_json

        artifact = tmp_path / "c17_3d.json"
        rc = main(["synth", str(c17_verilog), "--layers", "3",
                   "--json", str(artifact)])
        assert rc == 0
        design = design_from_json(artifact.read_text())
        assert isinstance(design, CrossbarDesign3D)
        assert design.num_layers == 3

    def test_layers_must_be_positive(self, c17_verilog, capsys):
        with pytest.raises(SystemExit):
            main(["synth", str(c17_verilog), "--layers", "0"])

    def test_bench_layer_sweep(self, tmp_path, capsys):
        from repro.perf import validate_bench_payload

        out_json = tmp_path / "bench.json"
        rc = main([
            "bench", "perf", "--circuits", "c17", "--jobs", "1",
            "--time-limit", "10", "--layer-sweep", "1,2",
            "--perf-json", str(out_json),
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "memristor layers" in out
        payload = json.loads(out_json.read_text())
        validate_bench_payload(payload)
        sweep = payload["layer_sweep"]
        assert sweep["layers"] == [1, 2]
        assert [c["circuit"] for c in sweep["circuits"]] == ["c17"]
        assert all(r["ok"] for c in sweep["circuits"] for r in c["results"])

    def test_bench_layer_sweep_rejects_garbage(self, capsys):
        with pytest.raises(SystemExit):
            main(["bench", "perf", "--circuits", "c17", "--layer-sweep", "two"])
