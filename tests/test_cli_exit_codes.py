"""Exit-code contract: 0 on success, 2 on usage/parse errors.

Covers the ``python -m repro`` entry point (``repro/__main__.py``) via
subprocesses and the in-process ``main()`` for each subcommand family,
including the service commands (``serve``/``client``).
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import main
from repro.io import write_blif

REPO_ROOT = Path(__file__).resolve().parent.parent


def _run_module(*argv: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        capture_output=True, text=True, env=env, timeout=300,
    )


def _exit_code(argv: list[str]) -> int:
    try:
        return main(argv)
    except SystemExit as exc:
        return exc.code if isinstance(exc.code, int) else 2


# -- python -m repro (covers __main__.py) ------------------------------------------

def test_module_entry_point_help_exits_zero():
    proc = _run_module("--help")
    assert proc.returncode == 0
    assert "synth" in proc.stdout and "serve" in proc.stdout


def test_module_entry_point_without_arguments_exits_two():
    proc = _run_module()
    assert proc.returncode == 2
    assert proc.stdout == ""


def test_module_entry_point_synthesizes_an_expression():
    proc = _run_module("synth", "--expr", "a & b", "--no-validate")
    assert proc.returncode == 0
    assert "crossbar" in proc.stdout


def test_module_entry_point_bad_expression_exits_two():
    proc = _run_module("synth", "--expr", "a &&& b")
    assert proc.returncode == 2
    assert "repro: error:" in proc.stderr


# -- synth -------------------------------------------------------------------------

def test_synth_success_exits_zero(capsys):
    assert _exit_code(["synth", "--expr", "(a & b) | c"]) == 0
    assert "validation : OK" in capsys.readouterr().out


def test_synth_missing_file_exits_two(capsys):
    assert _exit_code(["synth", "/nonexistent/circuit.blif"]) == 2
    assert "cannot read" in capsys.readouterr().err


def test_synth_unknown_suffix_exits_two(capsys, tmp_path):
    path = tmp_path / "circuit.what"
    path.write_text(".model m\n.inputs a\n.outputs f\n.names a f\n1 1\n.end\n")
    assert _exit_code(["synth", str(path)]) == 2
    assert "cannot infer format" in capsys.readouterr().err


def test_synth_parse_error_carries_location(capsys, tmp_path):
    path = tmp_path / "broken.blif"
    path.write_text(".model m\n.inputs a\n.outputs f\n.names a f\nnonsense\n.end\n")
    assert _exit_code(["synth", str(path)]) == 2
    assert str(path) in capsys.readouterr().err


# -- map / validate / faults -------------------------------------------------------

def test_map_with_invalid_design_json_exits_two(capsys, tmp_path, c17_netlist):
    blif = tmp_path / "c.blif"
    blif.write_text(write_blif(c17_netlist))
    bad_design = tmp_path / "bad.json"
    bad_design.write_text("{}")
    fm = tmp_path / "fm.json"
    assert _exit_code(["faults", "8", "8", "--out", str(fm)]) == 0
    capsys.readouterr()
    assert _exit_code([
        "map", str(bad_design), "--circuit", str(blif), "--fault-map", str(fm),
    ]) == 2
    assert "not a valid design JSON" in capsys.readouterr().err


def test_map_with_invalid_fault_map_exits_two(capsys, tmp_path, c17_netlist):
    blif = tmp_path / "c.blif"
    blif.write_text(write_blif(c17_netlist))
    design = tmp_path / "design.json"
    assert _exit_code(["synth", str(blif), "--no-validate", "--json", str(design)]) == 0
    bad_fm = tmp_path / "fm.json"
    bad_fm.write_text("[1, 2]")
    capsys.readouterr()
    assert _exit_code([
        "map", str(design), "--circuit", str(blif), "--fault-map", str(bad_fm),
    ]) == 2
    assert "not a valid fault map" in capsys.readouterr().err


def test_faults_rejects_nonpositive_dimensions(capsys):
    assert _exit_code(["faults", "0", "4"]) == 2
    assert "positive" in capsys.readouterr().err


def test_validate_missing_design_exits_two(capsys, tmp_path, c17_netlist):
    blif = tmp_path / "c.blif"
    blif.write_text(write_blif(c17_netlist))
    assert _exit_code(["validate", "/nonexistent.json", "--circuit", str(blif)]) == 2


# -- serve / client ----------------------------------------------------------------

def test_serve_requires_exactly_one_address(capsys):
    assert _exit_code(["serve"]) == 2
    assert "--socket" in capsys.readouterr().err
    assert _exit_code(["serve", "--socket", "/tmp/x.sock", "--tcp", "h:1"]) == 2


def test_serve_rejects_bad_tcp_and_cache_size(capsys):
    assert _exit_code(["serve", "--tcp", "no-port-here"]) == 2
    assert _exit_code(["serve", "--tcp", "127.0.0.1:0", "--cache-size", "-1"]) == 2


def test_client_requires_an_address(capsys):
    assert _exit_code(["client", "ping"]) == 2
    assert "--socket" in capsys.readouterr().err


def test_client_unreachable_server_exits_two(capsys, tmp_path):
    assert _exit_code([
        "client", "--socket", str(tmp_path / "absent.sock"), "ping",
    ]) == 2
    assert "cannot connect" in capsys.readouterr().err


def test_client_usage_error_without_subcommand():
    with pytest.raises(SystemExit) as excinfo:
        main(["client", "--tcp", "127.0.0.1:1"])
    assert excinfo.value.code == 2


# -- bench -------------------------------------------------------------------------

def test_bench_rejects_unknown_experiment():
    with pytest.raises(SystemExit) as excinfo:
        main(["bench", "not-an-experiment"])
    assert excinfo.value.code == 2


def test_bench_service_rejects_missing_trace(capsys):
    assert _exit_code(["bench", "service", "--trace", "/nonexistent.json"]) == 2
