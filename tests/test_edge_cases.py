"""Edge-case tests across the pipeline (degenerate functions, tiny
graphs, exotic flag combinations)."""

import pytest

from repro import Compact
from repro.crossbar import validate_design
from repro.expr import Ite, Not, Var, parse


class TestDegenerateFunctions:
    def test_identity_function(self):
        res = Compact().synthesize_expr(parse("a"), name="f")
        assert res.design.evaluate({"a": True})["f"] is True
        assert res.design.evaluate({"a": False})["f"] is False
        # Graph: one variable node + terminal -> two lines total.
        assert res.bdd_graph.num_nodes == 2

    def test_negated_identity(self):
        res = Compact().synthesize_expr(parse("~a"), name="f")
        assert res.design.evaluate({"a": False})["f"] is True

    def test_tautology_only(self):
        res = Compact().synthesize_expr(parse("a | ~a"), name="f")
        assert res.design.evaluate({"a": False})["f"] is True
        assert res.design.num_cols == 0  # nothing to map

    def test_contradiction_only(self):
        res = Compact().synthesize_expr(parse("a & ~a"), name="f")
        assert res.design.evaluate({"a": True})["f"] is False

    def test_mixed_constant_multi_output(self):
        exprs = {
            "t": parse("1"), "z": parse("0"),
            "f": parse("a & b"), "g": parse("a | b"),
        }
        res = Compact().synthesize_expr(exprs)
        rep = validate_design(
            res.design,
            lambda env: {k: e.evaluate(env) for k, e in exprs.items()},
            ["a", "b"],
        )
        assert rep.ok

    def test_single_variable_many_outputs(self):
        exprs = {f"o{i}": parse("a") if i % 2 else parse("~a") for i in range(6)}
        res = Compact().synthesize_expr(exprs)
        out = res.design.evaluate({"a": True})
        assert all(out[f"o{i}"] == bool(i % 2) for i in range(6))


class TestExprCorners:
    def test_ite_substitute(self):
        e = Ite(Var("c"), Var("a"), Var("b"))
        sub = e.substitute({"a": Var("x")})
        assert sub.evaluate({"c": 1, "x": 1, "b": 0})

    def test_ite_cofactor(self):
        e = Ite(Var("c"), Var("a"), Var("b"))
        assert e.cofactor("c", True) == Var("a")
        assert e.cofactor("c", False) == Var("b")

    def test_not_rebuild_through_substitute(self):
        e = Not(parse("a & b"))
        sub = e.substitute({"b": parse("1")})
        assert sub == Not(Var("a"))

    def test_deeply_nested_parse(self):
        depth = 60
        text = "a" + " & (a" * depth + ")" * depth
        e = parse(text)
        assert e.evaluate({"a": True})


class TestCompactCorners:
    def test_empty_graph_label(self):
        from repro.core import VHLabeling
        from repro.core.preprocess import BddGraph
        from repro.graphs import UGraph

        empty = BddGraph(UGraph(), {}, None, {"t": True})
        lab = Compact().label(empty)
        assert isinstance(lab, VHLabeling) and not lab.labels

    def test_bnb_backend_end_to_end_small(self):
        res = Compact(gamma=0.5, backend="bnb", time_limit=20).synthesize_expr(
            parse("(a & b) | (b & c)"), name="f"
        )
        rep = validate_design(
            res.design,
            lambda env: {"f": parse("(a & b) | (b & c)").evaluate(env)},
            ["a", "b", "c"],
        )
        assert rep.ok

    def test_two_outputs_same_root_share_row(self):
        res = Compact().synthesize_expr({"f": parse("a & b"), "g": parse("a & b")})
        assert res.design.output_rows["f"] == res.design.output_rows["g"]

    def test_gamma_bounds(self):
        for gamma in (0.0, 1.0):
            res = Compact(gamma=gamma).synthesize_expr(parse("a ^ b"), name="f")
            assert validate_design(
                res.design,
                lambda env: {"f": parse("a ^ b").evaluate(env)},
                ["a", "b"],
            ).ok


class TestMappingDeterminism:
    def test_same_input_same_design(self):
        from repro.crossbar import design_to_json

        a = Compact(gamma=0.5).synthesize_expr(parse("(a & b) | c"), name="f")
        b = Compact(gamma=0.5).synthesize_expr(parse("(a & b) | c"), name="f")
        assert design_to_json(a.design) == design_to_json(b.design)
