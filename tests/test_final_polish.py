"""Final round of targeted tests: fallback paths and small options."""

import pytest

from repro import Compact
from repro.circuits import Netlist, c17
from repro.crossbar import to_spice_netlist, validate_design
from repro.expr import parse


class TestAutoMethodFallback:
    def test_promoted_ports_trigger_mip_fallback(self):
        """A function whose roots collide in one bipartite component makes
        Method A promote ports; auto mode must then match the exact MIP."""
        # f and g share logic such that both roots sit in one component.
        exprs = {"f": parse("a & b"), "g": parse("(a & b) | c"), "h": parse("c")}
        auto = Compact(gamma=1.0, method="auto").synthesize_expr(exprs)
        mip = Compact(gamma=1.0, method="mip").synthesize_expr(exprs)
        assert auto.labeling.semiperimeter <= mip.labeling.semiperimeter + 1e-9
        rep = validate_design(
            auto.design,
            lambda env: {k: e.evaluate(env) for k, e in exprs.items()},
            ["a", "b", "c"],
        )
        assert rep.ok


class TestStaircaseOptions:
    def test_single_output_share_flag_equivalent(self):
        from repro.baselines import staircase_map_netlist
        from repro.circuits import parity_tree

        nl = parity_tree(6)
        a = staircase_map_netlist(nl, share_outputs=False)
        b = staircase_map_netlist(nl, share_outputs=True)
        # Single output: both paths build the same representation.
        assert a.bdd_nodes == b.bdd_nodes
        assert a.design.semiperimeter == b.design.semiperimeter


class TestMagicLevels:
    def test_levels_partition_luts(self, c17_netlist):
        from repro.baselines import magic_map

        sched = magic_map(c17_netlist)
        by_level = [lut for level in sched.levels.values() for lut in level]
        assert sorted(l.output for l in by_level) == sorted(
            l.output for l in sched.luts
        )


class TestSpiceOptions:
    def test_custom_title(self):
        design = Compact().synthesize_expr(parse("a"), name="f").design
        deck = to_spice_netlist(design, {"a": True}, title="my deck")
        assert deck.splitlines()[0] == "* my deck: flow-based crossbar DC deck"


class TestValidateEdge:
    def test_output_aliased_to_input_net(self):
        # An output that IS a primary input: trivially a wire.
        nl = Netlist("wire", inputs=["a"], outputs=["a"])
        res = Compact().synthesize_netlist(nl)
        assert res.design.evaluate({"a": True})["a"] is True
        assert res.design.evaluate({"a": False})["a"] is False


class TestCliBnbBackend:
    def test_synth_expr_with_bnb(self, capsys):
        from repro.cli import main

        rc = main([
            "synth", "--expr", "a & b", "--backend", "bnb", "--time-limit", "20",
        ])
        out = capsys.readouterr().out
        assert rc == 0 and "validation : OK" in out


class TestBddGraphSanity:
    def test_edges_match_internal_nodes(self, c17_netlist):
        from repro.bdd import build_sbdd
        from repro.core import preprocess

        sbdd = build_sbdd(c17_netlist)
        bg = preprocess(sbdd)
        # Every internal node contributes <= 2 surviving edges.
        assert bg.num_edges <= 2 * (bg.num_nodes - 1)
        # At least one edge reaches the 1-terminal.
        assert any(bg.terminal in (u, v) for u, v in bg.graph.edges())
