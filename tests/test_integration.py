"""Full-pipeline integration and property tests.

Random circuits go through the complete flow — netlist -> SBDD ->
pre-processing -> VH-labeling -> crossbar -> evaluation — and the result
is checked exhaustively against the netlist, logically and (sampled)
analogically.  This is the reproduction's equivalent of the paper's
SPICE sign-off on every synthesized design.
"""

import itertools

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro import Compact
from repro.baselines import magic_map, staircase_map_netlist
from repro.circuits import random_netlist
from repro.crossbar import simulate, validate_design
from repro.io import read_blif, write_blif


@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    gamma=st.sampled_from([0.0, 0.5, 1.0]),
    n_inputs=st.integers(3, 6),
    n_gates=st.integers(5, 25),
)
def test_compact_designs_are_always_valid(seed, gamma, n_inputs, n_gates):
    nl = random_netlist(n_inputs, n_gates, 3, seed=seed)
    res = Compact(gamma=gamma, time_limit=30).synthesize_netlist(nl)
    report = validate_design(res.design, nl.evaluate, nl.inputs)
    assert report.ok, (seed, gamma, report.counterexample, report.mismatched_outputs)


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_heuristic_designs_are_always_valid(seed):
    nl = random_netlist(6, 30, 4, seed=seed)
    res = Compact(gamma=1.0, method="heuristic").synthesize_netlist(nl)
    report = validate_design(res.design, nl.evaluate, nl.inputs)
    assert report.ok, (seed, report.counterexample)


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_compact_never_larger_than_staircase(seed):
    nl = random_netlist(5, 20, 3, seed=seed)
    ours = Compact(gamma=1.0, time_limit=30).synthesize_netlist(nl)
    base = staircase_map_netlist(nl, share_outputs=True)
    assert ours.design.semiperimeter <= base.design.semiperimeter


@settings(max_examples=5, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_analog_agrees_with_logical_on_random_designs(seed):
    nl = random_netlist(4, 15, 2, seed=seed)
    res = Compact(gamma=0.5, time_limit=30).synthesize_netlist(nl)
    for bits in itertools.product([False, True], repeat=4):
        env = dict(zip(nl.inputs, bits))
        assert simulate(res.design, env).outputs == res.design.evaluate(env)


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_blif_import_flow(seed):
    """File-based flow: BLIF text in, valid crossbar out."""
    nl = random_netlist(5, 18, 3, seed=seed)
    imported = read_blif(write_blif(nl))
    res = Compact(gamma=0.5, time_limit=30).synthesize_netlist(imported)
    assert validate_design(res.design, nl.evaluate, nl.inputs).ok


@settings(max_examples=5, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_three_paradigms_agree_functionally(seed):
    """COMPACT, the staircase baseline and the MAGIC LUT network all
    compute the same function."""
    nl = random_netlist(5, 20, 3, seed=seed)
    compact = Compact(gamma=0.5, time_limit=30).synthesize_netlist(nl).design
    stair = staircase_map_netlist(nl).design
    magic = magic_map(nl)
    for bits in itertools.product([False, True], repeat=5):
        env = dict(zip(nl.inputs, bits))
        expected = nl.evaluate(env)
        assert compact.evaluate(env) == expected
        assert stair.evaluate(env) == expected
        assert magic.evaluate(env, nl.outputs) == expected


class TestSemiperimeterInvariants:
    @pytest.mark.parametrize("seed", range(5))
    def test_s_equals_n_plus_k_modulo_false_row(self, seed):
        nl = random_netlist(6, 22, 3, seed=seed)
        res = Compact(gamma=1.0, time_limit=30).synthesize_netlist(nl)
        n = res.bdd_graph.num_nodes
        k = res.labeling.vh_count
        extra = 1 if any(
            v is False for v in res.bdd_graph.constant_outputs.values()
        ) else 0
        assert res.design.semiperimeter == n + k + extra

    @pytest.mark.parametrize("seed", range(5))
    def test_gamma_monotonicity(self, seed):
        nl = random_netlist(5, 18, 3, seed=seed)
        runs = {
            g: Compact(gamma=g, time_limit=30).synthesize_netlist(nl)
            for g in (0.0, 0.5, 1.0)
        }
        assert runs[1.0].labeling.semiperimeter <= runs[0.5].labeling.semiperimeter
        assert runs[0.5].labeling.semiperimeter <= runs[0.0].labeling.semiperimeter
        assert runs[0.0].labeling.max_dimension <= runs[0.5].labeling.max_dimension
        assert runs[0.5].labeling.max_dimension <= runs[1.0].labeling.max_dimension
