"""Targeted tests for smaller utility paths across the library."""

import math

import pytest

from repro.bench.tables import Table, geometric_mean, normalised_average, text_series
from repro.milp.branch_and_bound import _Arrays
from repro.milp import Model, sum_expr


class TestBenchTables:
    def test_text_series_plots_extremes(self):
        art = text_series([0, 1, 2, 3], [0, 1, 4, 9], width=20, height=5)
        assert "*" in art
        assert "x: [0, 3]" in art and "y: [0, 9]" in art

    def test_text_series_empty(self):
        assert "empty" in text_series([], [])

    def test_text_series_constant_series(self):
        art = text_series([1, 2], [5, 5], width=10, height=3)
        assert "y: [5, 5]" in art

    def test_geometric_mean(self):
        assert geometric_mean([1, 100]) == pytest.approx(10.0)
        assert math.isnan(geometric_mean([]))
        assert math.isnan(geometric_mean([0, -1]))

    def test_normalised_average_skips_zero_baselines(self):
        assert normalised_average([1, 5], [2, 0]) == pytest.approx(0.5)
        assert math.isnan(normalised_average([], []))

    def test_table_float_formatting(self):
        t = Table("T", ["x"])
        t.add_row(3.14159)
        t.add_row(1234.5)
        t.add_row(float("nan"))
        text = t.render()
        assert "3.142" in text
        assert "1234.5" in text or "1235" in text
        assert "-" in text


class TestMilpObjectiveStep:
    def test_integer_objective_has_step(self):
        m = Model()
        x = m.add_binary("x")
        y = m.add_binary("y")
        m.minimize(0.5 * x + 0.5 * y)
        arrays = _Arrays(m)
        assert arrays.obj_step == pytest.approx(0.5)
        assert arrays.lift(0.2) == pytest.approx(0.5)
        assert arrays.lift(0.5) == pytest.approx(0.5)

    def test_continuous_objective_has_no_step(self):
        m = Model()
        x = m.add_continuous("x", 0, 1)
        m.minimize(2 * x)
        arrays = _Arrays(m)
        assert arrays.obj_step == 0.0
        assert arrays.lift(0.3) == 0.3

    def test_mixed_coefficients_gcd(self):
        m = Model()
        a, b = m.add_integer("a", 0, 9), m.add_integer("b", 0, 9)
        m.minimize(6 * a + 4 * b)
        arrays = _Arrays(m)
        assert arrays.obj_step == pytest.approx(2.0)


class TestGraphUtilities:
    def test_edge_data_missing_edge_raises(self):
        from repro.graphs import UGraph

        g = UGraph()
        g.add_edge(1, 2)
        with pytest.raises(KeyError):
            g.edge_data(1, 3)

    def test_find_odd_cycle_across_components(self):
        from repro.graphs import UGraph, find_odd_cycle

        g = UGraph()
        g.add_edge(0, 1)  # bipartite component
        for a, b in ((10, 11), (11, 12), (12, 10)):  # triangle
            g.add_edge(a, b)
        cyc = find_odd_cycle(g)
        assert cyc is not None and set(cyc) == {10, 11, 12}


class TestBddUtilities:
    def test_add_var_after_nodes_exist(self):
        from repro.bdd import BDD

        m = BDD(["a"])
        f = m.var("a")
        m.add_var("z")
        g = m.apply_and(f, m.var("z"))
        assert m.evaluate(g, {"a": True, "z": True})

    def test_compose_chain(self):
        from repro.bdd import BDD

        m = BDD(["a", "b", "c"])
        f = m.apply_or(m.var("a"), m.var("b"))
        g = m.compose(f, "b", m.var("c"))
        g = m.compose(g, "c", m.var("a"))
        assert g == m.var("a")

    def test_sat_count_nvars_smaller_than_order(self):
        from repro.bdd import BDD

        m = BDD(["a", "b", "c"])
        f = m.var("a")
        assert m.sat_count(f, nvars=1) == 1


class TestDesignRendering:
    def test_render_marks_both_ports_on_same_row(self):
        from repro import Compact
        from repro.expr import parse

        res = Compact().synthesize_expr({"t": parse("1"), "f": parse("a")})
        text = res.design.render()
        assert "<- Vin" in text
        assert "-> t" in text

    def test_row_and_col_labels_annotated(self):
        from repro import Compact
        from repro.expr import parse

        res = Compact().synthesize_expr(parse("a & b"), name="f")
        design = res.design
        assert set(design.row_labels) == set(range(design.num_rows))
        assert set(design.col_labels) == set(range(design.num_cols))


class TestCompactCustomOrder:
    def test_explicit_variable_order(self, ):
        from repro import Compact
        from repro.circuits import ripple_carry_adder
        from repro.crossbar import validate_design

        nl = ripple_carry_adder(3)
        order = sorted(nl.inputs)
        res = Compact(gamma=0.5).synthesize_netlist(nl, order=order)
        assert validate_design(res.design, nl.evaluate, nl.inputs).ok
        assert res.sbdd.manager.var_order == tuple(order)
