"""Property-based tests for the extension modules (hypothesis)."""

import itertools

import hypothesis.strategies as st
import numpy as np
from hypothesis import given, settings

from repro import Compact
from repro.bdd import build_fbdd, build_sbdd, fbdd_to_bdd_graph
from repro.circuits import random_netlist
from repro.crossbar import (
    assignments_to_matrix,
    batch_evaluate,
    evaluate_with_faults,
    schedule_sequence,
)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_batch_equals_scalar_on_random_designs(seed):
    nl = random_netlist(5, 20, 3, seed=seed)
    design = Compact(gamma=0.5, time_limit=30).synthesize_netlist(nl).design
    envs = [
        dict(zip(nl.inputs, bits))
        for bits in itertools.product([False, True], repeat=5)
    ]
    X = assignments_to_matrix(envs, nl.inputs)
    batch = batch_evaluate(design, nl.inputs, X)
    for i, env in enumerate(envs):
        ref = design.evaluate(env)
        assert {k: bool(v[i]) for k, v in batch.items()} == ref


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_fbdd_equals_robdd_semantics(seed):
    nl = random_netlist(6, 22, 3, seed=seed)
    sbdd = build_sbdd(nl)
    fbdd = build_fbdd(sbdd)
    fbdd.check_free()
    for bits in itertools.product([False, True], repeat=6):
        env = dict(zip(nl.inputs, bits))
        assert fbdd.evaluate(env) == nl.evaluate(env)


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_fbdd_designs_always_valid(seed):
    from repro.crossbar import validate_design

    nl = random_netlist(5, 18, 3, seed=seed)
    fbdd = build_fbdd(build_sbdd(nl))
    design, labeling, _ = Compact(gamma=0.5, time_limit=30).synthesize_bdd_graph(
        fbdd_to_bdd_graph(fbdd), name="f"
    )
    assert validate_design(design, nl.evaluate, nl.inputs).ok


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000), length=st.integers(2, 12))
def test_programming_schedule_invariants(seed, length):
    import random as _random

    nl = random_netlist(5, 15, 2, seed=seed)
    design = Compact(gamma=0.5, time_limit=30).synthesize_netlist(nl).design
    rng = _random.Random(seed)
    stream = [
        {n: bool(rng.getrandbits(1)) for n in nl.inputs} for _ in range(length)
    ]
    sched = schedule_sequence(design, stream)
    assert sched.n_evaluations == length
    assert len(sched.steps) == length - 1
    # Writes per step never exceed the programmed cell count.
    for step in sched.steps:
        assert 0 <= step.cells_written <= design.memristor_count
        assert step.rows_touched <= design.num_rows
        assert step.delay_steps <= design.num_rows + 1
    assert sched.amortized_delay <= sched.worst_case_delay


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_empty_fault_set_is_identity(seed):
    nl = random_netlist(5, 18, 3, seed=seed)
    design = Compact(gamma=0.5, time_limit=30).synthesize_netlist(nl).design
    for bits in itertools.product([False, True], repeat=5):
        env = dict(zip(nl.inputs, bits))
        assert evaluate_with_faults(design, env, []) == design.evaluate(env)


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_minimized_pla_synthesizes_identically(seed):
    """QM-minimized two-level form -> crossbar == original function."""
    from repro.crossbar import validate_design
    from repro.expr import minimize_expr
    from repro.io import read_pla, write_pla

    nl = random_netlist(4, 12, 2, seed=seed)
    round_tripped = read_pla(write_pla(nl))
    design = Compact(gamma=0.5, time_limit=30).synthesize_netlist(round_tripped).design
    assert validate_design(design, nl.evaluate, nl.inputs).ok
